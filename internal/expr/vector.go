package expr

// This file implements the vectorized expression engine: column-at-a-time
// evaluation of resolved expression trees over dense float64 columns with
// null masks, the batch-at-a-time twin of the row-wise Eval path. It serves
// the columnar data plane of the physical layer — filters become selection
// bitmaps over a decoded skyline.Batch, projections become computed columns
// — so a batch decoded once at the scan survives the whole narrow pipeline.
//
// The engine follows the decode-refusal contract of the columnar dominance
// kernel: it only ever evaluates expressions whose vectorized result is
// bit-for-bit identical to the boxed Eval/EvalPredicate result, refusing
// everything else so the boxed path transparently serves it. Refusal is
// two-level:
//
//   - CanVectorize is the static probe: it accepts column references of
//     numeric kinds, numeric/boolean/NULL literals, the arithmetic and
//     comparison operators, AND/OR/NOT three-valued logic, unary minus, and
//     IS [NOT] NULL. Strings, CASE, IN, scalar functions, aggregates, and
//     integer literals beyond ±2⁵³ (where the boxed exact int64 comparison
//     and a float64 comparison can disagree) are refused.
//   - ErrNotVectorized is the runtime refusal: a referenced ordinal has no
//     dense column in the batch, or an integer-typed arithmetic result
//     leaves the ±2⁵³ exactness range (the boxed path wraps int64 there
//     while float64 rounds). Callers fall back to the boxed row loop.
//
// Bit-identity notes mirrored from the boxed implementations: comparisons
// replicate CompareValues' NaN total order (NaN = NaN, NaN below
// everything), division and modulo by zero yield NULL (never Inf), AND/OR
// implement Kleene three-valued logic (eager evaluation is observationally
// identical to the boxed short-circuit because no vectorizable node can
// produce a runtime error), and NULL propagates through arithmetic,
// comparisons, and negation.

import (
	"errors"
	"fmt"
	"math"

	"skysql/internal/types"
)

// ErrNotVectorized is the runtime refusal of the vectorized engine: the
// expression passed the static CanVectorize probe but this particular batch
// cannot be served exactly (missing dense column, integer result beyond the
// float64-exact range). Callers must fall back to the boxed Eval path.
var ErrNotVectorized = errors.New("expr: not vectorizable on this batch")

// ColumnSource provides the dense columns of one batch to the vectorized
// engine. Column returns the raw (not direction-normalized) float64 values
// of the input-row ordinal ord plus a null mask (nil when the column has no
// NULLs); ok=false when the ordinal has no dense column, which surfaces as
// ErrNotVectorized.
type ColumnSource interface {
	NumRows() int
	Column(ord int) (vals []float64, nulls []bool, ok bool)
}

// vclass is the static value class of a vectorizable node.
type vclass int

const (
	vnone vclass = iota // not vectorizable
	vnum                // numeric (float64 column)
	vbool               // boolean (selection column)
	vnull               // NULL literal: fits numeric and boolean positions
)

// CanVectorize is the static capability probe: it reports whether e can be
// evaluated by the vectorized engine against rows of the given schema. The
// probe is necessary but not sufficient — a batch may still refuse at
// runtime with ErrNotVectorized (see the file comment) — and deliberately
// conservative: anything non-numeric, unsupported (Case/In/functions/
// aggregates), or inexact under float64 is served by the boxed Eval.
func CanVectorize(e Expr, schema *types.Schema) bool {
	return classOf(e, schema) != vnone
}

// classOf computes the static value class of a node, vnone when any part of
// the tree is not vectorizable.
func classOf(e Expr, schema *types.Schema) vclass {
	switch n := e.(type) {
	case *BoundRef:
		if schema == nil || n.Index < 0 || n.Index >= schema.Len() {
			return vnone
		}
		typ := n.Typ
		if typ == types.KindNull {
			typ = schema.Fields[n.Index].Type
		}
		if typ == types.KindInt || typ == types.KindFloat {
			return vnum
		}
		return vnone
	case *Literal:
		switch n.Value.Kind() {
		case types.KindNull:
			return vnull
		case types.KindFloat:
			return vnum
		case types.KindInt:
			if i := n.Value.AsInt(); i > types.MaxExactFloatInt || i < -types.MaxExactFloatInt {
				return vnone // exact int64 comparison semantics would be lost
			}
			return vnum
		case types.KindBool:
			return vbool
		}
		return vnone
	case *Alias:
		return classOf(n.Child, schema)
	case *Negate:
		if c := classOf(n.Child, schema); c == vnum || c == vnull {
			return vnum
		}
		return vnone
	case *Not:
		if c := classOf(n.Child, schema); c == vbool || c == vnull {
			return vbool
		}
		return vnone
	case *IsNull:
		if classOf(n.Child, schema) != vnone {
			return vbool
		}
		return vnone
	case *Binary:
		l, r := classOf(n.L, schema), classOf(n.R, schema)
		if l == vnone || r == vnone {
			return vnone
		}
		switch {
		case n.Op == OpAnd || n.Op == OpOr:
			if (l == vbool || l == vnull) && (r == vbool || r == vnull) {
				return vbool
			}
		case n.Op.IsComparison():
			if (l == vnum || l == vnull) && (r == vnum || r == vnull) {
				return vbool
			}
		default: // arithmetic
			if (l == vnum || l == vnull) && (r == vnum || r == vnull) {
				return vnum
			}
		}
		return vnone
	}
	return vnone
}

// VectorEvaluator evaluates vectorizable expressions over one batch.
// Bytes accumulates the scratch column buffers allocated during
// evaluation, so callers can charge them to peak-bytes accounting.
type VectorEvaluator struct {
	src   ColumnSource
	Bytes int64
}

// NewVectorEvaluator creates an evaluator over the given column source.
func NewVectorEvaluator(src ColumnSource) *VectorEvaluator {
	return &VectorEvaluator{src: src}
}

func (v *VectorEvaluator) newFloats() []float64 {
	v.Bytes += int64(v.src.NumRows()) * 8
	return make([]float64, v.src.NumRows())
}

func (v *VectorEvaluator) newBools() []bool {
	v.Bytes += int64(v.src.NumRows())
	return make([]bool, v.src.NumRows())
}

// EvalNumeric evaluates a numeric-class expression into a dense column plus
// null mask (nil when no slot is NULL).
func (v *VectorEvaluator) EvalNumeric(e Expr) (vals []float64, nulls []bool, err error) {
	return v.evalNum(e)
}

// EvalPredicate evaluates a boolean-class expression into a selection
// bitmap with SQL WHERE semantics: NULL counts as false. It is the
// vectorized twin of EvalPredicate.
func (v *VectorEvaluator) EvalPredicate(e Expr) ([]bool, error) {
	sel, nulls, err := v.evalBool(e)
	if err != nil {
		return nil, err
	}
	if nulls != nil {
		for i, n := range nulls {
			if n {
				sel[i] = false
			}
		}
	}
	return sel, nil
}

// MaterializeNumeric converts a numeric result column back into boxed
// values of the expression's static kind — exactly the values the boxed
// Eval would have produced (integer results beyond the float64-exact range
// are refused at evaluation time, so the int64 conversion is exact).
func MaterializeNumeric(kind types.Kind, vals []float64, nulls []bool) []types.Value {
	out := make([]types.Value, len(vals))
	for i, f := range vals {
		if nulls != nil && nulls[i] {
			out[i] = types.Null
			continue
		}
		if kind == types.KindInt {
			out[i] = types.Int(int64(f))
		} else {
			out[i] = types.Float(f)
		}
	}
	return out
}

// MaterializeBool converts a boolean result column into boxed values.
func MaterializeBool(vals []bool, nulls []bool) []types.Value {
	out := make([]types.Value, len(vals))
	for i, b := range vals {
		if nulls != nil && nulls[i] {
			out[i] = types.Null
			continue
		}
		out[i] = types.Bool(b)
	}
	return out
}

// evalNum evaluates a numeric-class node.
func (v *VectorEvaluator) evalNum(e Expr) ([]float64, []bool, error) {
	switch n := e.(type) {
	case *BoundRef:
		vals, nulls, ok := v.src.Column(n.Index)
		if !ok {
			return nil, nil, ErrNotVectorized
		}
		return vals, nulls, nil
	case *Literal:
		vals := v.newFloats()
		if n.Value.IsNull() {
			nulls := v.newBools()
			for i := range nulls {
				nulls[i] = true
			}
			return vals, nulls, nil
		}
		f := n.Value.AsFloat()
		for i := range vals {
			vals[i] = f
		}
		return vals, nil, nil
	case *Alias:
		return v.evalNum(n.Child)
	case *Negate:
		cv, cn, err := v.evalNum(n.Child)
		if err != nil {
			return nil, nil, err
		}
		out := v.newFloats()
		for i, f := range cv {
			out[i] = -f
		}
		if n.DataType() == types.KindInt {
			normalizeIntZeros(out)
		}
		return out, cn, nil
	case *Binary:
		return v.evalArith(n)
	}
	return nil, nil, fmt.Errorf("expr: vectorized evaluation of unsupported node %T", e)
}

// evalArith evaluates a vectorized arithmetic node with the boxed
// NULL-propagation and zero-divisor semantics.
func (v *VectorEvaluator) evalArith(b *Binary) ([]float64, []bool, error) {
	lv, ln, err := v.evalNum(b.L)
	if err != nil {
		return nil, nil, err
	}
	rv, rn, err := v.evalNum(b.R)
	if err != nil {
		return nil, nil, err
	}
	out := v.newFloats()
	nulls := mergeNulls(v, ln, rn)
	switch b.Op {
	case OpAdd:
		for i := range out {
			out[i] = lv[i] + rv[i]
		}
	case OpSub:
		for i := range out {
			out[i] = lv[i] - rv[i]
		}
	case OpMul:
		for i := range out {
			out[i] = lv[i] * rv[i]
		}
	case OpDiv:
		// Boxed: division by zero is NULL, never Inf. The mask is written
		// to, so it must not alias an operand's (possibly shared) mask.
		nulls = copyNulls(v, nulls)
		for i := range out {
			if rv[i] == 0 {
				nulls[i] = true
				continue
			}
			out[i] = lv[i] / rv[i]
		}
	case OpMod:
		nulls = copyNulls(v, nulls)
		for i := range out {
			if rv[i] == 0 {
				nulls[i] = true
				continue
			}
			out[i] = math.Mod(lv[i], rv[i])
		}
	default:
		return nil, nil, fmt.Errorf("expr: vectorized evaluation of unsupported arithmetic %s", b.Op)
	}
	// Exactness guard for integer-typed results: the boxed path computes
	// exact (wrapping) int64 arithmetic, which float64 reproduces only while
	// the result magnitude stays below 2⁵³. math.Mod on exact integer
	// operands is always exact (|result| < |divisor| ≤ 2⁵³), but the guard
	// is kept uniform — refusal is always safe. The same loop normalizes
	// negative zeros: int64 arithmetic has no -0 (e.g. boxed -5*0 = +0),
	// while the float ops produce one, and the sign would propagate through
	// later multiplications.
	if b.DataType() == types.KindInt {
		for i, f := range out {
			if nulls != nil && nulls[i] {
				continue
			}
			if f >= float64(types.MaxExactFloatInt) || f <= -float64(types.MaxExactFloatInt) {
				return nil, nil, ErrNotVectorized
			}
			if f == 0 {
				out[i] = 0
			}
		}
	}
	return out, nulls, nil
}

// normalizeIntZeros replaces -0 with +0 in an integer-typed result column
// (int64 semantics have a single zero).
func normalizeIntZeros(out []float64) {
	for i, f := range out {
		if f == 0 {
			out[i] = 0
		}
	}
}

// evalBool evaluates a boolean-class node into (values, nulls).
func (v *VectorEvaluator) evalBool(e Expr) ([]bool, []bool, error) {
	switch n := e.(type) {
	case *Literal:
		vals := v.newBools()
		if n.Value.IsNull() {
			nulls := v.newBools()
			for i := range nulls {
				nulls[i] = true
			}
			return vals, nulls, nil
		}
		bv := n.Value.AsBool()
		for i := range vals {
			vals[i] = bv
		}
		return vals, nil, nil
	case *Alias:
		return v.evalBool(n.Child)
	case *Not:
		cv, cn, err := v.evalBool(n.Child)
		if err != nil {
			return nil, nil, err
		}
		out := v.newBools()
		for i, b := range cv {
			out[i] = !b
		}
		return out, cn, nil
	case *IsNull:
		return v.evalIsNull(n)
	case *Binary:
		if n.Op == OpAnd || n.Op == OpOr {
			return v.evalLogical(n)
		}
		if n.Op.IsComparison() {
			return v.evalCompare(n)
		}
	}
	return nil, nil, fmt.Errorf("expr: vectorized evaluation of unsupported boolean node %T", e)
}

// evalIsNull evaluates IS [NOT] NULL over the child's null mask; the result
// is never NULL itself.
func (v *VectorEvaluator) evalIsNull(n *IsNull) ([]bool, []bool, error) {
	var cn []bool
	var err error
	if isBoolClass(n.Child) {
		_, cn, err = v.evalBool(n.Child)
	} else {
		_, cn, err = v.evalNum(n.Child)
	}
	if err != nil {
		return nil, nil, err
	}
	out := v.newBools()
	for i := range out {
		isNull := cn != nil && cn[i]
		out[i] = isNull != n.Negated
	}
	return out, nil, nil
}

// evalCompare evaluates a vectorized comparison, replicating the boxed
// CompareValues semantics: NULL propagates, and NaN follows the boxed total
// order (NaN = NaN, NaN below every number).
func (v *VectorEvaluator) evalCompare(b *Binary) ([]bool, []bool, error) {
	lv, ln, err := v.evalNum(b.L)
	if err != nil {
		return nil, nil, err
	}
	rv, rn, err := v.evalNum(b.R)
	if err != nil {
		return nil, nil, err
	}
	out := v.newBools()
	nulls := mergeNulls(v, ln, rn)
	for i := range out {
		if nulls != nil && nulls[i] {
			continue
		}
		c := compareFloats(lv[i], rv[i])
		switch b.Op {
		case OpEq:
			out[i] = c == 0
		case OpNeq:
			out[i] = c != 0
		case OpLt:
			out[i] = c < 0
		case OpLeq:
			out[i] = c <= 0
		case OpGt:
			out[i] = c > 0
		case OpGeq:
			out[i] = c >= 0
		}
	}
	return out, nulls, nil
}

// isBoolClass reports whether a vectorizable node produces booleans. It is
// the structural (schema-free) form of classOf, valid on trees that already
// passed the static probe: column references are always numeric there.
func isBoolClass(e Expr) bool {
	switch n := e.(type) {
	case *Literal:
		return n.Value.Kind() == types.KindBool
	case *Alias:
		return isBoolClass(n.Child)
	case *Not, *IsNull:
		return true
	case *Binary:
		return n.Op == OpAnd || n.Op == OpOr || n.Op.IsComparison()
	}
	return false
}

// compareFloats replicates the numeric branch of types.CompareValues,
// including its NaN total order.
func compareFloats(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case math.IsNaN(a) && math.IsNaN(b):
		return 0
	case math.IsNaN(a):
		return -1
	case math.IsNaN(b):
		return 1
	}
	return 0
}

// evalLogical evaluates AND/OR under Kleene three-valued logic. Both sides
// are evaluated eagerly; this is observationally identical to the boxed
// short-circuit because vectorizable nodes cannot raise runtime errors
// (refusals abandon the whole vectorized attempt).
func (v *VectorEvaluator) evalLogical(b *Binary) ([]bool, []bool, error) {
	lv, ln, err := v.evalBool(b.L)
	if err != nil {
		return nil, nil, err
	}
	rv, rn, err := v.evalBool(b.R)
	if err != nil {
		return nil, nil, err
	}
	out := v.newBools()
	var nulls []bool
	and := b.Op == OpAnd
	for i := range out {
		lNull := ln != nil && ln[i]
		rNull := rn != nil && rn[i]
		var val, null bool
		switch {
		case !lNull && !rNull:
			if and {
				val = lv[i] && rv[i]
			} else {
				val = lv[i] || rv[i]
			}
		case and && ((!lNull && !lv[i]) || (!rNull && !rv[i])):
			val = false // FALSE AND NULL = FALSE
		case !and && ((!lNull && lv[i]) || (!rNull && rv[i])):
			val = true // TRUE OR NULL = TRUE
		default:
			null = true
		}
		if null {
			if nulls == nil {
				nulls = v.newBools()
			}
			nulls[i] = true
			continue
		}
		out[i] = val
	}
	return out, nulls, nil
}

// copyNulls returns a private, writable copy of a null mask (fresh and
// all-false when mask is nil).
func copyNulls(v *VectorEvaluator, mask []bool) []bool {
	out := v.newBools()
	copy(out, mask)
	return out
}

// mergeNulls ORs two null masks (either may be nil).
func mergeNulls(v *VectorEvaluator, a, b []bool) []bool {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	out := v.newBools()
	for i := range out {
		out[i] = a[i] || b[i]
	}
	return out
}
