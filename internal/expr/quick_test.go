package expr

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"skysql/internal/types"
)

// tvb is a three-valued boolean for quick generation.
type tvb int8

const (
	tvFalse tvb = iota
	tvTrue
	tvNull
)

// Generate implements quick.Generator.
func (tvb) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(tvb(rng.Intn(3)))
}

func (v tvb) expr() Expr {
	switch v {
	case tvTrue:
		return NewLiteral(types.Bool(true))
	case tvFalse:
		return NewLiteral(types.Bool(false))
	default:
		return NewLiteral(types.Null)
	}
}

func evalTV(t *testing.T, e Expr) tvb {
	t.Helper()
	v, err := e.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.IsNull() {
		return tvNull
	}
	if v.AsBool() {
		return tvTrue
	}
	return tvFalse
}

// TestDeMorganThreeValued checks NOT(a AND b) == NOT a OR NOT b and
// NOT(a OR b) == NOT a AND NOT b over all three-valued inputs — the
// algebraic identities SQL three-valued logic must satisfy.
func TestDeMorganThreeValued(t *testing.T) {
	f := func(a, b tvb) bool {
		lhs1 := evalTV(t, NewNot(NewBinary(OpAnd, a.expr(), b.expr())))
		rhs1 := evalTV(t, NewBinary(OpOr, NewNot(a.expr()), NewNot(b.expr())))
		lhs2 := evalTV(t, NewNot(NewBinary(OpOr, a.expr(), b.expr())))
		rhs2 := evalTV(t, NewBinary(OpAnd, NewNot(a.expr()), NewNot(b.expr())))
		return lhs1 == rhs1 && lhs2 == rhs2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestLogicalCommutativity checks AND/OR commute under three-valued logic.
func TestLogicalCommutativity(t *testing.T) {
	f := func(a, b tvb) bool {
		return evalTV(t, NewBinary(OpAnd, a.expr(), b.expr())) == evalTV(t, NewBinary(OpAnd, b.expr(), a.expr())) &&
			evalTV(t, NewBinary(OpOr, a.expr(), b.expr())) == evalTV(t, NewBinary(OpOr, b.expr(), a.expr()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestComparisonNegationDuality checks NOT(a < b) == a >= b for non-null
// operands, and that both go NULL together when an operand is NULL.
func TestComparisonNegationDuality(t *testing.T) {
	f := func(a, b int64, aNull, bNull bool) bool {
		var av, bv types.Value
		if aNull {
			av = types.Null
		} else {
			av = types.Int(a)
		}
		if bNull {
			bv = types.Null
		} else {
			bv = types.Int(b)
		}
		lt := NewBinary(OpLt, NewLiteral(av), NewLiteral(bv))
		geq := NewBinary(OpGeq, NewLiteral(av), NewLiteral(bv))
		return evalTV(t, NewNot(lt)) == evalTV(t, geq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestArithmeticIdentities checks a + 0 == a, a * 1 == a for integers.
func TestArithmeticIdentities(t *testing.T) {
	f := func(a int64) bool {
		plus, err := NewBinary(OpAdd, NewLiteral(types.Int(a)), NewLiteral(types.Int(0))).Eval(nil)
		if err != nil {
			return false
		}
		times, err := NewBinary(OpMul, NewLiteral(types.Int(a)), NewLiteral(types.Int(1))).Eval(nil)
		if err != nil {
			return false
		}
		return plus.AsInt() == a && times.AsInt() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTransformPreservesEval checks that an identity Transform yields an
// expression evaluating to the same value.
func TestTransformPreservesEval(t *testing.T) {
	f := func(a, b int64) bool {
		e := NewBinary(OpAdd, NewLiteral(types.Int(a)),
			NewBinary(OpMul, NewLiteral(types.Int(b)), NewLiteral(types.Int(3))))
		out := Transform(e, func(n Expr) Expr { return n })
		v1, err1 := e.Eval(nil)
		v2, err2 := out.Eval(nil)
		return err1 == nil && err2 == nil && v1.Equal(v2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestInMatchesDisjunction checks e IN (a,b,c) ≡ e=a OR e=b OR e=c under
// three-valued logic for random (possibly NULL) integers.
func TestInMatchesDisjunction(t *testing.T) {
	mk := func(v int64, null bool) Expr {
		if null {
			return NewLiteral(types.Null)
		}
		return NewLiteral(types.Int(v % 4)) // small domain forces matches
	}
	f := func(e int64, eNull bool, a, b, c int64, aN, bN, cN bool) bool {
		needle := mk(e, eNull)
		list := []Expr{mk(a, aN), mk(b, bN), mk(c, cN)}
		in := NewIn(needle, list, false)
		or := NewBinary(OpOr,
			NewBinary(OpOr,
				NewBinary(OpEq, needle, list[0]),
				NewBinary(OpEq, needle, list[1])),
			NewBinary(OpEq, needle, list[2]))
		return evalTV(t, in) == evalTV(t, or)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
