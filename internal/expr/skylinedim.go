package expr

import (
	"fmt"
	"strings"

	"skysql/internal/types"
)

// SkylineDir is the direction of a skyline dimension: MIN, MAX, or DIFF
// (paper Definition 3.1).
type SkylineDir int

// Skyline dimension directions.
const (
	SkyMin SkylineDir = iota
	SkyMax
	SkyDiff
)

// String returns the SQL keyword for the direction.
func (d SkylineDir) String() string {
	switch d {
	case SkyMin:
		return "MIN"
	case SkyMax:
		return "MAX"
	case SkyDiff:
		return "DIFF"
	default:
		return fmt.Sprintf("SkylineDir(%d)", int(d))
	}
}

// SkylineDirByName parses MIN/MAX/DIFF (case-insensitive).
func SkylineDirByName(name string) (SkylineDir, bool) {
	switch strings.ToUpper(name) {
	case "MIN":
		return SkyMin, true
	case "MAX":
		return SkyMax, true
	case "DIFF":
		return SkyDiff, true
	}
	return 0, false
}

// SkylineDimension pairs an arbitrary child expression (usually a column,
// but possibly an aggregate per the paper §5.2) with a MIN/MAX/DIFF
// direction. Storing the dimension as the node's child lets the analyzer's
// generic expression-resolution machinery resolve it (paper §5.2).
type SkylineDimension struct {
	Child Expr
	Dir   SkylineDir
}

// NewSkylineDimension creates a skyline dimension expression.
func NewSkylineDimension(child Expr, dir SkylineDir) *SkylineDimension {
	return &SkylineDimension{Child: child, Dir: dir}
}

func (s *SkylineDimension) Eval(row types.Row) (types.Value, error) { return s.Child.Eval(row) }

func (s *SkylineDimension) String() string {
	return fmt.Sprintf("%s %s", s.Child, s.Dir)
}

func (s *SkylineDimension) Children() []Expr { return []Expr{s.Child} }
func (s *SkylineDimension) WithChildren(c []Expr) Expr {
	return &SkylineDimension{Child: c[0], Dir: s.Dir}
}
func (s *SkylineDimension) Resolved() bool       { return s.Child.Resolved() }
func (s *SkylineDimension) DataType() types.Kind { return s.Child.DataType() }
func (s *SkylineDimension) Nullable() bool       { return s.Child.Nullable() }
