package expr

import (
	"testing"

	"skysql/internal/types"
)

func TestInPredicate(t *testing.T) {
	list := []Expr{lit(types.Int(1)), lit(types.Int(2)), lit(types.Int(3))}
	tests := []struct {
		name    string
		needle  types.Value
		list    []Expr
		negated bool
		want    types.Value
	}{
		{"match", types.Int(2), list, false, types.Bool(true)},
		{"no match", types.Int(9), list, false, types.Bool(false)},
		{"negated match", types.Int(2), list, true, types.Bool(false)},
		{"negated no match", types.Int(9), list, true, types.Bool(true)},
		{"null needle", types.Null, list, false, types.Null},
		{"null in list no match", types.Int(9),
			[]Expr{lit(types.Int(1)), lit(types.Null)}, false, types.Null},
		{"null in list with match", types.Int(1),
			[]Expr{lit(types.Int(1)), lit(types.Null)}, false, types.Bool(true)},
		{"negated null", types.Null, list, true, types.Null},
	}
	for _, tt := range tests {
		got := mustEval(t, NewIn(lit(tt.needle), tt.list, tt.negated), nil)
		if got.IsNull() != tt.want.IsNull() || (!got.IsNull() && got.AsBool() != tt.want.AsBool()) {
			t.Errorf("%s: got %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestInKindMismatch(t *testing.T) {
	in := NewIn(lit(types.Int(1)), []Expr{lit(types.Str("x"))}, false)
	if _, err := in.Eval(nil); err == nil {
		t.Error("IN over incomparable kinds must error")
	}
}

func TestInTreeMethods(t *testing.T) {
	in := NewIn(ref(0), []Expr{lit(types.Int(1)), lit(types.Int(2))}, true)
	if len(in.Children()) != 3 {
		t.Errorf("children = %d", len(in.Children()))
	}
	rebuilt := in.WithChildren(in.Children()).(*In)
	if !rebuilt.Negated || len(rebuilt.List) != 2 {
		t.Error("WithChildren lost structure")
	}
	if in.String() != "c#0 NOT IN (1, 2)" {
		t.Errorf("String = %q", in.String())
	}
	if in.DataType() != types.KindBool {
		t.Error("IN must be boolean")
	}
}

func TestCaseExpression(t *testing.T) {
	c := NewCase([]When{
		{Cond: NewBinary(OpLt, ref(0), lit(types.Int(10))), Result: lit(types.Str("low"))},
		{Cond: NewBinary(OpLt, ref(0), lit(types.Int(100))), Result: lit(types.Str("mid"))},
	}, lit(types.Str("high")))
	tests := []struct {
		in   int64
		want string
	}{{5, "low"}, {50, "mid"}, {500, "high"}}
	for _, tt := range tests {
		got := mustEval(t, c, types.Row{types.Int(tt.in)})
		if got.AsString() != tt.want {
			t.Errorf("CASE(%d) = %v, want %s", tt.in, got, tt.want)
		}
	}
}

func TestCaseWithoutElseYieldsNull(t *testing.T) {
	c := NewCase([]When{
		{Cond: lit(types.Bool(false)), Result: lit(types.Int(1))},
	}, nil)
	if got := mustEval(t, c, nil); !got.IsNull() {
		t.Errorf("no-match CASE = %v, want NULL", got)
	}
	if !c.Nullable() {
		t.Error("ELSE-less CASE must be nullable")
	}
}

func TestCaseNullCondIsFalse(t *testing.T) {
	c := NewCase([]When{
		{Cond: lit(types.Null), Result: lit(types.Int(1))},
	}, lit(types.Int(2)))
	if got := mustEval(t, c, nil); got.AsInt() != 2 {
		t.Errorf("NULL WHEN condition must not match: %v", got)
	}
}

func TestCaseTreeMethods(t *testing.T) {
	c := NewCase([]When{
		{Cond: lit(types.Bool(true)), Result: lit(types.Int(1))},
	}, lit(types.Int(2)))
	if len(c.Children()) != 3 {
		t.Errorf("children = %d", len(c.Children()))
	}
	r := c.WithChildren(c.Children()).(*Case)
	if len(r.Whens) != 1 || r.Else == nil {
		t.Error("WithChildren lost structure")
	}
	if c.DataType() != types.KindInt {
		t.Errorf("DataType = %v", c.DataType())
	}
	want := "CASE WHEN true THEN 1 ELSE 2 END"
	if c.String() != want {
		t.Errorf("String = %q, want %q", c.String(), want)
	}
}
