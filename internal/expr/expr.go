// Package expr implements the expression trees evaluated by the engine:
// column references, literals, arithmetic/comparison/boolean operators,
// scalar functions, aggregate functions, and — following the paper — skyline
// dimension expressions that wrap an arbitrary child expression together
// with a MIN/MAX/DIFF direction.
//
// Expressions follow Spark's two-phase model: the parser produces
// *unresolved* Column nodes; the analyzer rewrites them into *bound*
// ordinal references against the child plan's schema. Only fully resolved
// trees can be evaluated.
package expr

import (
	"fmt"
	"strings"

	"skysql/internal/types"
)

// Expr is a node in an expression tree.
type Expr interface {
	// Eval evaluates the expression against a row. Calling Eval on an
	// unresolved expression returns an error.
	Eval(row types.Row) (types.Value, error)
	// String renders the expression as SQL-ish text. Two expressions with
	// equal String() are treated as semantically equal by the analyzer.
	String() string
	// Children returns the direct sub-expressions.
	Children() []Expr
	// WithChildren returns a copy of the node with the children replaced.
	// len(children) must match len(Children()).
	WithChildren(children []Expr) Expr
	// Resolved reports whether the node and all children are resolved.
	Resolved() bool
	// DataType returns the result kind, or types.KindNull when unknown.
	DataType() types.Kind
	// Nullable reports whether the expression may evaluate to NULL.
	Nullable() bool
}

// Transform rewrites an expression bottom-up: children first, then the node
// itself is passed to fn. fn may return the node unchanged.
func Transform(e Expr, fn func(Expr) Expr) Expr {
	children := e.Children()
	if len(children) > 0 {
		newChildren := make([]Expr, len(children))
		changed := false
		for i, c := range children {
			newChildren[i] = Transform(c, fn)
			if newChildren[i] != c {
				changed = true
			}
		}
		if changed {
			e = e.WithChildren(newChildren)
		}
	}
	return fn(e)
}

// Walk visits every node of the tree in pre-order.
func Walk(e Expr, fn func(Expr)) {
	fn(e)
	for _, c := range e.Children() {
		Walk(c, fn)
	}
}

// ContainsAggregate reports whether the tree contains an Aggregate node.
func ContainsAggregate(e Expr) bool {
	found := false
	Walk(e, func(n Expr) {
		if _, ok := n.(*Aggregate); ok {
			found = true
		}
	})
	return found
}

// allResolved reports whether every expression in the slice is resolved.
func allResolved(es []Expr) bool {
	for _, e := range es {
		if !e.Resolved() {
			return false
		}
	}
	return true
}

// Column is an unresolved column reference produced by the parser.
type Column struct {
	Qualifier string
	Name      string
}

// NewColumn creates an unresolved column reference.
func NewColumn(qualifier, name string) *Column {
	return &Column{Qualifier: strings.ToLower(qualifier), Name: strings.ToLower(name)}
}

func (c *Column) Eval(types.Row) (types.Value, error) {
	return types.Null, fmt.Errorf("expr: unresolved column %s", c)
}

func (c *Column) String() string {
	if c.Qualifier == "" {
		return c.Name
	}
	return c.Qualifier + "." + c.Name
}

func (c *Column) Children() []Expr         { return nil }
func (c *Column) WithChildren([]Expr) Expr { return c }
func (c *Column) Resolved() bool           { return false }
func (c *Column) DataType() types.Kind     { return types.KindNull }
func (c *Column) Nullable() bool           { return true }

// BoundRef is a resolved reference to an ordinal of the input row.
type BoundRef struct {
	Index     int
	Name      string // display name, carried through for output schemas
	Qualifier string // table binding of the referenced field, if any
	Typ       types.Kind
	Null      bool
}

// NewBoundRef creates a resolved ordinal reference.
func NewBoundRef(index int, name string, typ types.Kind, nullable bool) *BoundRef {
	return &BoundRef{Index: index, Name: name, Typ: typ, Null: nullable}
}

func (b *BoundRef) Eval(row types.Row) (types.Value, error) {
	if b.Index < 0 || b.Index >= len(row) {
		return types.Null, fmt.Errorf("expr: bound ref #%d out of range for row of width %d", b.Index, len(row))
	}
	return row[b.Index], nil
}

func (b *BoundRef) String() string           { return fmt.Sprintf("%s#%d", b.Name, b.Index) }
func (b *BoundRef) Children() []Expr         { return nil }
func (b *BoundRef) WithChildren([]Expr) Expr { return b }
func (b *BoundRef) Resolved() bool           { return true }
func (b *BoundRef) DataType() types.Kind     { return b.Typ }
func (b *BoundRef) Nullable() bool           { return b.Null }

// Literal is a constant value.
type Literal struct {
	Value types.Value
}

// NewLiteral creates a literal expression.
func NewLiteral(v types.Value) *Literal { return &Literal{Value: v} }

func (l *Literal) Eval(types.Row) (types.Value, error) { return l.Value, nil }
func (l *Literal) String() string {
	if l.Value.Kind() == types.KindString {
		// Escape embedded quotes so the rendering re-parses.
		return "'" + strings.ReplaceAll(l.Value.AsString(), "'", "''") + "'"
	}
	return l.Value.String()
}
func (l *Literal) Children() []Expr         { return nil }
func (l *Literal) WithChildren([]Expr) Expr { return l }
func (l *Literal) Resolved() bool           { return true }
func (l *Literal) DataType() types.Kind     { return l.Value.Kind() }
func (l *Literal) Nullable() bool           { return l.Value.IsNull() }

// Alias names the result of a child expression (SELECT expr AS name). The
// optional Qualifier lets analyzer-generated aliases keep the table binding
// of the column they forward (used when desugaring USING joins).
type Alias struct {
	Child     Expr
	Name      string
	Qualifier string
}

// NewAlias wraps child under the given output name.
func NewAlias(child Expr, name string) *Alias {
	return &Alias{Child: child, Name: strings.ToLower(name)}
}

// NewQualifiedAlias wraps child under a name that keeps a table qualifier.
func NewQualifiedAlias(child Expr, qualifier, name string) *Alias {
	return &Alias{Child: child, Name: strings.ToLower(name), Qualifier: strings.ToLower(qualifier)}
}

func (a *Alias) Eval(row types.Row) (types.Value, error) { return a.Child.Eval(row) }
func (a *Alias) String() string                          { return a.Child.String() + " AS " + a.Name }
func (a *Alias) Children() []Expr                        { return []Expr{a.Child} }
func (a *Alias) WithChildren(c []Expr) Expr {
	return &Alias{Child: c[0], Name: a.Name, Qualifier: a.Qualifier}
}
func (a *Alias) Resolved() bool       { return a.Child.Resolved() }
func (a *Alias) DataType() types.Kind { return a.Child.DataType() }
func (a *Alias) Nullable() bool       { return a.Child.Nullable() }

// Star is the `*` or `t.*` projection item. It is expanded by the analyzer
// and never evaluated.
type Star struct {
	Qualifier string
}

func (s *Star) Eval(types.Row) (types.Value, error) {
	return types.Null, fmt.Errorf("expr: star must be expanded by the analyzer")
}
func (s *Star) String() string {
	if s.Qualifier == "" {
		return "*"
	}
	return s.Qualifier + ".*"
}
func (s *Star) Children() []Expr         { return nil }
func (s *Star) WithChildren([]Expr) Expr { return s }
func (s *Star) Resolved() bool           { return false }
func (s *Star) DataType() types.Kind     { return types.KindNull }
func (s *Star) Nullable() bool           { return true }

// OutputQualifier derives the table qualifier an expression contributes to
// a schema field (empty for computed expressions).
func OutputQualifier(e Expr) string {
	switch n := e.(type) {
	case *Alias:
		return n.Qualifier
	case *Column:
		return n.Qualifier
	case *BoundRef:
		return n.Qualifier
	case *SkylineDimension:
		return OutputQualifier(n.Child)
	}
	return ""
}

// OutputName derives the column name an expression contributes to a schema.
func OutputName(e Expr) string {
	switch n := e.(type) {
	case *Alias:
		return n.Name
	case *Column:
		return n.Name
	case *BoundRef:
		return n.Name
	case *SkylineDimension:
		return OutputName(n.Child)
	default:
		return strings.ToLower(e.String())
	}
}
