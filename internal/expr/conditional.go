package expr

import (
	"fmt"
	"strings"

	"skysql/internal/types"
)

// In is the SQL membership predicate `e [NOT] IN (v1, v2, ...)` with full
// three-valued semantics: TRUE on a match, NULL when no match was found
// but the needle or any list element was NULL, FALSE otherwise (inverted
// under Negated).
type In struct {
	E       Expr
	List    []Expr
	Negated bool
}

// NewIn creates an IN predicate.
func NewIn(e Expr, list []Expr, negated bool) *In {
	return &In{E: e, List: list, Negated: negated}
}

func (in *In) Eval(row types.Row) (types.Value, error) {
	needle, err := in.E.Eval(row)
	if err != nil {
		return types.Null, err
	}
	sawNull := needle.IsNull()
	matched := false
	if !needle.IsNull() {
		for _, item := range in.List {
			v, err := item.Eval(row)
			if err != nil {
				return types.Null, err
			}
			if v.IsNull() {
				sawNull = true
				continue
			}
			c, ok := types.CompareValues(needle, v)
			if !ok {
				return types.Null, fmt.Errorf("expr: IN over incomparable kinds %s and %s", needle.Kind(), v.Kind())
			}
			if c == 0 {
				matched = true
				break
			}
		}
	}
	switch {
	case matched:
		return types.Bool(!in.Negated), nil
	case sawNull:
		return types.Null, nil
	default:
		return types.Bool(in.Negated), nil
	}
}

func (in *In) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	op := "IN"
	if in.Negated {
		op = "NOT IN"
	}
	return fmt.Sprintf("%s %s (%s)", in.E, op, strings.Join(parts, ", "))
}

func (in *In) Children() []Expr { return append([]Expr{in.E}, in.List...) }

func (in *In) WithChildren(c []Expr) Expr {
	return &In{E: c[0], List: c[1:], Negated: in.Negated}
}

func (in *In) Resolved() bool {
	return in.E.Resolved() && allResolved(in.List)
}

func (in *In) DataType() types.Kind { return types.KindBool }

func (in *In) Nullable() bool {
	if in.E.Nullable() {
		return true
	}
	for _, e := range in.List {
		if e.Nullable() {
			return true
		}
	}
	return false
}

// When is one branch of a searched CASE expression.
type When struct {
	Cond   Expr
	Result Expr
}

// Case is the searched CASE expression:
//
//	CASE WHEN c1 THEN r1 [WHEN c2 THEN r2 ...] [ELSE e] END
//
// A missing ELSE yields NULL when no branch matches.
type Case struct {
	Whens []When
	Else  Expr // may be nil
}

// NewCase creates a searched CASE expression.
func NewCase(whens []When, elseExpr Expr) *Case {
	return &Case{Whens: whens, Else: elseExpr}
}

func (c *Case) Eval(row types.Row) (types.Value, error) {
	for _, w := range c.Whens {
		hit, err := EvalPredicate(w.Cond, row)
		if err != nil {
			return types.Null, err
		}
		if hit {
			return w.Result.Eval(row)
		}
	}
	if c.Else != nil {
		return c.Else.Eval(row)
	}
	return types.Null, nil
}

func (c *Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.Cond, w.Result)
	}
	if c.Else != nil {
		fmt.Fprintf(&sb, " ELSE %s", c.Else)
	}
	sb.WriteString(" END")
	return sb.String()
}

func (c *Case) Children() []Expr {
	out := make([]Expr, 0, len(c.Whens)*2+1)
	for _, w := range c.Whens {
		out = append(out, w.Cond, w.Result)
	}
	if c.Else != nil {
		out = append(out, c.Else)
	}
	return out
}

func (c *Case) WithChildren(children []Expr) Expr {
	out := &Case{Whens: make([]When, len(c.Whens))}
	for i := range c.Whens {
		out.Whens[i] = When{Cond: children[2*i], Result: children[2*i+1]}
	}
	if c.Else != nil {
		out.Else = children[len(children)-1]
	}
	return out
}

func (c *Case) Resolved() bool { return allResolved(c.Children()) }

func (c *Case) DataType() types.Kind {
	for _, w := range c.Whens {
		if k := w.Result.DataType(); k != types.KindNull {
			return k
		}
	}
	if c.Else != nil {
		return c.Else.DataType()
	}
	return types.KindNull
}

func (c *Case) Nullable() bool {
	if c.Else == nil {
		return true
	}
	for _, ch := range c.Children() {
		if ch.Nullable() {
			return true
		}
	}
	return false
}
