package cost

import (
	"math"
	"testing"

	"skysql/internal/expr"
	"skysql/internal/types"
)

func sketchOf(t *testing.T, data [][]float64, nullAt map[[2]int]bool) *Table {
	t.Helper()
	rows := make([]types.Row, len(data))
	width := 0
	for i, d := range data {
		row := make(types.Row, len(d))
		for j, v := range d {
			if nullAt[[2]int{i, j}] {
				row[j] = types.Null
			} else {
				row[j] = types.Float(v)
			}
		}
		rows[i] = row
		width = len(d)
	}
	return Sketch(rows, width)
}

func TestSketchRangesAndNulls(t *testing.T) {
	s := sketchOf(t, [][]float64{{1, 10}, {5, 20}, {9, 0}, {3, 0}},
		map[[2]int]bool{{2, 1}: true, {3, 1}: true})
	if s.Rows != 4 {
		t.Fatalf("rows = %d", s.Rows)
	}
	c0 := s.Cols[0]
	if !c0.Numeric || c0.Min != 1 || c0.Max != 9 || c0.NullFraction != 0 {
		t.Errorf("col 0 sketch = %+v", c0)
	}
	c1 := s.Cols[1]
	if !c1.Numeric || c1.Min != 10 || c1.Max != 20 || c1.NullFraction != 0.5 {
		t.Errorf("col 1 sketch = %+v", c1)
	}
}

func TestSketchNonNumericColumn(t *testing.T) {
	rows := []types.Row{
		{types.Str("a"), types.Int(1)},
		{types.Str("b"), types.Int(2)},
	}
	s := Sketch(rows, 2)
	if s.Cols[0].Numeric {
		t.Error("string column must not sketch as numeric")
	}
	if !s.Cols[1].Numeric {
		t.Error("int column must sketch as numeric")
	}
}

func fref(i int) *expr.BoundRef { return expr.NewBoundRef(i, "c", types.KindFloat, false) }

func lit(v float64) expr.Expr { return expr.NewLiteral(types.Float(v)) }

func TestSelectivityRangeInterpolation(t *testing.T) {
	// Column 0 uniform over [0, 100].
	s := &Table{Rows: 100, Cols: []Column{{Min: 0, Max: 100, Numeric: true}}}
	cases := []struct {
		e    expr.Expr
		want float64
	}{
		{expr.NewBinary(expr.OpLt, fref(0), lit(25)), 0.25},
		{expr.NewBinary(expr.OpGt, fref(0), lit(25)), 0.75},
		{expr.NewBinary(expr.OpLeq, fref(0), lit(100)), 1},
		{expr.NewBinary(expr.OpGeq, fref(0), lit(200)), minSelectivity}, // clamped
		{expr.NewBinary(expr.OpLt, lit(25), fref(0)), 0.75},             // flipped orientation
		{expr.NewBinary(expr.OpEq, fref(0), lit(3)), eqSelectivity},
		{expr.NewNot(expr.NewBinary(expr.OpLt, fref(0), lit(25))), 0.75},
		{expr.NewBinary(expr.OpAnd,
			expr.NewBinary(expr.OpLt, fref(0), lit(50)),
			expr.NewBinary(expr.OpGt, fref(0), lit(25))), 0.375},
		{expr.NewBinary(expr.OpOr,
			expr.NewBinary(expr.OpLt, fref(0), lit(25)),
			expr.NewBinary(expr.OpGt, fref(0), lit(75))), 0.4375},
	}
	for _, c := range cases {
		if got := Selectivity(c.e, s); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Selectivity(%s) = %v, want %v", c.e.String(), got, c.want)
		}
	}
}

func TestSelectivityNullFractionAndDefaults(t *testing.T) {
	s := &Table{Rows: 10, Cols: []Column{{Min: 0, Max: 10, NullFraction: 0.3, Numeric: true}}}
	if got := Selectivity(expr.NewIsNull(fref(0), false), s); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("IS NULL = %v", got)
	}
	if got := Selectivity(expr.NewIsNull(fref(0), true), s); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("IS NOT NULL = %v", got)
	}
	// NULL rows never pass a range predicate: the interpolation scales by
	// the non-null fraction.
	if got := Selectivity(expr.NewBinary(expr.OpLt, fref(0), lit(5)), s); math.Abs(got-0.35) > 1e-9 {
		t.Errorf("range over nullable column = %v, want 0.35", got)
	}
	// No sketch: everything defaults.
	if got := Selectivity(expr.NewBinary(expr.OpLt, fref(0), lit(5)), nil); got != defaultSelectivity {
		t.Errorf("nil sketch = %v, want default", got)
	}
	// Column-vs-column comparisons default too.
	if got := Selectivity(expr.NewBinary(expr.OpLt, fref(0), fref(0)), s); got != defaultSelectivity {
		t.Errorf("col-vs-col = %v, want default", got)
	}
}

func TestGateDecodeAtScanCrossover(t *testing.T) {
	// width 4, one predicate node, vectorizable: eager = 4.25,
	// lazy = 2 + 4·sel — crossover at sel = 0.5625.
	if GateDecodeAtScan(0.25, 4, 1, true) {
		t.Error("selective filter must defer the decode")
	}
	if !GateDecodeAtScan(0.75, 4, 1, true) {
		t.Error("non-selective filter must keep decode-at-scan")
	}
	// Non-vectorizable filters pay the boxed loop either way: eager can
	// only lose while the filter discards anything.
	if GateDecodeAtScan(0.75, 4, 1, false) {
		t.Error("non-vectorizable filter must defer under selectivity < 1")
	}
	if !GateDecodeAtScan(1, 4, 1, false) {
		t.Error("a keep-everything filter must not defer")
	}
	// Degenerate width decodes nothing worth gating.
	if !GateDecodeAtScan(0.01, 0, 1, true) {
		t.Error("zero-width decode must not defer")
	}
}

func TestExchangeTarget(t *testing.T) {
	// Tiny inputs floor at MinPartitionRows (collapse to one partition).
	if got := ExchangeTarget(100, 8); got != MinPartitionRows {
		t.Errorf("ExchangeTarget(100, 8) = %d", got)
	}
	// Large inputs split evenly across the executors.
	if got := ExchangeTarget(1<<20, 8); got != 1<<17 {
		t.Errorf("ExchangeTarget(1M, 8) = %d", got)
	}
	// The derived partition count keeps every executor busy on large input.
	rows := 1 << 20
	target := ExchangeTarget(rows, 8)
	if parts := (rows + target - 1) / target; parts != 8 {
		t.Errorf("large-input partitions = %d, want 8", parts)
	}
	if got := ExchangeTarget(10, 0); got != MinPartitionRows {
		t.Errorf("ExchangeTarget(10, 0) = %d", got)
	}
}

func TestPredicateNodes(t *testing.T) {
	if got := PredicateNodes(fref(0)); got != 1 {
		t.Errorf("bare ref = %d, want floor 1", got)
	}
	e := expr.NewBinary(expr.OpAnd,
		expr.NewBinary(expr.OpLt, fref(0), lit(1)),
		expr.NewNot(expr.NewIsNull(fref(1), false)))
	if got := PredicateNodes(e); got != 4 {
		t.Errorf("compound predicate = %d, want 4", got)
	}
}
