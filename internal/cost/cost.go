// Package cost is the engine's light-weight cost model: column sketches
// (min/max/null-fraction, one pass over the rows, cached per scan) plus
// static predicate-shape heuristics feed a cardinality/selectivity
// estimator, and a handful of closed-form rules turn the estimates into
// the planning decisions that used to be hardcoded:
//
//   - GateDecodeAtScan decides whether a fused stage should decode its
//     columnar batch at the source (paying the decode on every pre-filter
//     row to run the filters vectorized) or defer the decode to the local
//     skyline (paying the boxed filter but decoding only the survivors).
//
//   - ExchangeTarget picks the rows-per-partition target of an adaptive
//     exchange from the observed upstream size and the executor count, so
//     tiny intermediates collapse into fewer tasks while large inputs
//     still fan out to every executor.
//
// Every consumer records its choice in cluster.Metrics.CostDecisions, so
// the decisions stay observable (EXPLAIN after a run, the shell's \s,
// skybench -json). The model is deliberately coarse — decisions must be
// deterministic and cheap, and every gated path is bit-identical to its
// ungated twin, so a wrong estimate costs time, never correctness.
package cost

import (
	"math"

	"skysql/internal/expr"
	"skysql/internal/types"
)

// Column is the sketch of one column: the numeric range and null fraction
// observed in a single pass. Numeric is false when any non-NULL value was
// non-numeric (no range-based estimates then).
type Column struct {
	Min, Max     float64
	NullFraction float64
	Numeric      bool
	// HasNaN records whether any NaN was observed. NaN sorts below every
	// number in the engine's total order, so it satisfies min-side
	// comparisons (< / <=) while sitting outside [Min, Max]; pruning must
	// know it is there.
	HasNaN bool
	// Hist is an optional equi-width histogram of the finite numeric
	// values over [Min, Max] (counts per bucket; segment footers persist
	// it). When present, rangeSelectivity interpolates the histogram mass
	// instead of assuming uniformity — the skewed-column fix.
	Hist []float64
}

// Table aggregates the column sketches of one relation.
type Table struct {
	Rows int
	Cols []Column
}

// Sketch builds the table sketch in one pass over rows. width is the
// schema width; short rows leave the missing columns non-numeric.
func Sketch(rows []types.Row, width int) *Table {
	t := &Table{Rows: len(rows), Cols: make([]Column, width)}
	nulls := make([]int, width)
	nonNum := make([]bool, width)
	for i := range t.Cols {
		t.Cols[i].Min, t.Cols[i].Max = math.Inf(1), math.Inf(-1)
	}
	for _, row := range rows {
		for d := 0; d < width && d < len(row); d++ {
			v := row[d]
			switch {
			case v.IsNull():
				nulls[d]++
			case v.IsNumeric():
				f := v.AsFloat()
				if math.IsNaN(f) {
					t.Cols[d].HasNaN = true
					continue
				}
				if f < t.Cols[d].Min {
					t.Cols[d].Min = f
				}
				if f > t.Cols[d].Max {
					t.Cols[d].Max = f
				}
			default:
				nonNum[d] = true
			}
		}
	}
	for d := range t.Cols {
		c := &t.Cols[d]
		c.Numeric = !nonNum[d] && c.Min <= c.Max
		if t.Rows > 0 {
			c.NullFraction = float64(nulls[d]) / float64(t.Rows)
		}
	}
	return t
}

// Textbook default selectivities for predicate shapes the sketch cannot
// resolve, and the clamp bounds keeping compound estimates sane.
const (
	defaultSelectivity = 1.0 / 3
	eqSelectivity      = 0.1
	minSelectivity     = 0.001
)

// Selectivity estimates the fraction of rows a predicate keeps, from the
// sketch plus predicate-shape heuristics: range comparisons against
// literals interpolate the sketched min/max, AND multiplies, OR adds with
// the overlap subtracted, NOT complements, IS [NOT] NULL reads the null
// fraction, and anything else falls back to the textbook 1/3. The result
// is clamped to [minSelectivity, 1]. t may be nil (everything defaults).
func Selectivity(e expr.Expr, t *Table) float64 {
	return clamp(selectivity(e, t))
}

func clamp(s float64) float64 {
	if s < minSelectivity {
		return minSelectivity
	}
	if s > 1 {
		return 1
	}
	return s
}

func selectivity(e expr.Expr, t *Table) float64 {
	switch n := e.(type) {
	case *expr.Alias:
		return selectivity(n.Child, t)
	case *expr.Not:
		return 1 - clamp(selectivity(n.Child, t))
	case *expr.IsNull:
		if c, ok := sketchCol(n.Child, t); ok {
			if n.Negated {
				return 1 - c.NullFraction
			}
			return c.NullFraction
		}
		return defaultSelectivity
	case *expr.Literal:
		if n.Value.Kind() == types.KindBool {
			if n.Value.AsBool() {
				return 1
			}
			return 0
		}
	case *expr.Binary:
		switch n.Op {
		case expr.OpAnd:
			return clamp(selectivity(n.L, t)) * clamp(selectivity(n.R, t))
		case expr.OpOr:
			l, r := clamp(selectivity(n.L, t)), clamp(selectivity(n.R, t))
			return l + r - l*r
		case expr.OpEq:
			return eqSelectivity
		case expr.OpNeq:
			return 1 - eqSelectivity
		case expr.OpLt, expr.OpLeq, expr.OpGt, expr.OpGeq:
			return rangeSelectivity(n, t)
		}
	}
	return defaultSelectivity
}

// rangeSelectivity interpolates a comparison between a sketched column and
// a constant over the column's [min, max] range, assuming uniformity (the
// standard System R estimate). Non-resolvable shapes default.
func rangeSelectivity(b *expr.Binary, t *Table) float64 {
	col, colOK := sketchCol(b.L, t)
	lit, litOK := literalValue(b.R)
	op := b.Op
	if !colOK || !litOK {
		// Try the flipped orientation: literal op column.
		col, colOK = sketchCol(b.R, t)
		lit, litOK = literalValue(b.L)
		if !colOK || !litOK {
			return defaultSelectivity
		}
		switch op {
		case expr.OpLt:
			op = expr.OpGt
		case expr.OpLeq:
			op = expr.OpGeq
		case expr.OpGt:
			op = expr.OpLt
		case expr.OpGeq:
			op = expr.OpLeq
		}
	}
	if !col.Numeric {
		return defaultSelectivity
	}
	span := col.Max - col.Min
	if span <= 0 || math.IsInf(span, 0) || math.IsNaN(span) {
		return defaultSelectivity
	}
	frac := histFraction(col, lit)
	if frac < 0 { // no histogram: System R uniform interpolation
		frac = (lit - col.Min) / span
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	keep := 1 - col.NullFraction // NULL comparisons never pass a WHERE
	switch op {
	case expr.OpLt, expr.OpLeq:
		return frac * keep
	default: // OpGt, OpGeq
		return (1 - frac) * keep
	}
}

// histFraction estimates the fraction of the column's finite values
// strictly below lit from the equi-width histogram, interpolating
// linearly inside the bucket lit falls in. Returns -1 when the column
// carries no histogram (caller falls back to uniform interpolation).
func histFraction(col Column, lit float64) float64 {
	if len(col.Hist) == 0 {
		return -1
	}
	total := 0.0
	for _, n := range col.Hist {
		total += n
	}
	if total <= 0 {
		return -1
	}
	if lit <= col.Min {
		return 0
	}
	if lit >= col.Max {
		return 1
	}
	bw := (col.Max - col.Min) / float64(len(col.Hist))
	below := 0.0
	for b, n := range col.Hist {
		lo := col.Min + float64(b)*bw
		hi := lo + bw
		switch {
		case lit >= hi:
			below += n
		case lit > lo:
			below += n * (lit - lo) / bw
		}
	}
	return below / total
}

// ulpMargin is how many units-in-the-last-place the pruning tests widen
// both the zone bounds and the literal by. Zone maps store float64;
// int64 values beyond ±2⁵³ round when sketched, and a literal may round
// the other way — two ulps on each side covers both roundings, so a
// prune decision is conservative even at the edge of exact-integer
// range.
const ulpMargin = 2

func widenDown(f float64) float64 {
	for i := 0; i < ulpMargin; i++ {
		f = math.Nextafter(f, math.Inf(-1))
	}
	return f
}

func widenUp(f float64) float64 {
	for i := 0; i < ulpMargin; i++ {
		f = math.Nextafter(f, math.Inf(1))
	}
	return f
}

// ProvablyEmpty reports whether the sketch proves the predicate keeps no
// row — the zone-map pruning test. It is deliberately one-sided: a true
// return is a guarantee (safe to skip the rows entirely), a false return
// means nothing. Soundness leans on three engine facts: NULL comparisons
// evaluate to NULL and never pass a WHERE; NaN sorts below every number
// in the total order (so NaN passes < / <= against any numeric literal
// while sitting outside [Min, Max] — min-side rules require HasNaN ==
// false); and zone bounds plus literals are widened by ulpMargin so
// float64 rounding of large integers can never flip a decision. The
// decision is a pure function of (predicate, sketch) — no clocks, no
// randomness — so prune counters are deterministic and benchdiff-gated.
func ProvablyEmpty(e expr.Expr, t *Table) bool {
	if t == nil {
		return false
	}
	switch n := e.(type) {
	case *expr.Alias:
		return ProvablyEmpty(n.Child, t)
	case *expr.Literal:
		return n.Value.Kind() == types.KindBool && !n.Value.AsBool()
	case *expr.IsNull:
		if c, ok := sketchCol(n.Child, t); ok {
			if n.Negated {
				return c.NullFraction >= 1
			}
			return c.NullFraction <= 0 && t.Rows > 0
		}
		return false
	case *expr.Binary:
		switch n.Op {
		case expr.OpAnd:
			// A conjunction is empty when either side is.
			return ProvablyEmpty(n.L, t) || ProvablyEmpty(n.R, t)
		case expr.OpOr:
			return ProvablyEmpty(n.L, t) && ProvablyEmpty(n.R, t)
		case expr.OpEq, expr.OpLt, expr.OpLeq, expr.OpGt, expr.OpGeq:
			return rangeEmpty(n, t)
		}
	}
	return false
}

// rangeEmpty tests one comparison against the zone map, normalizing to
// column-op-literal orientation like rangeSelectivity.
func rangeEmpty(b *expr.Binary, t *Table) bool {
	col, colOK := sketchCol(b.L, t)
	lit, litOK := literalValue(b.R)
	op := b.Op
	if !colOK || !litOK {
		col, colOK = sketchCol(b.R, t)
		lit, litOK = literalValue(b.L)
		if !colOK || !litOK {
			return false
		}
		switch op {
		case expr.OpLt:
			op = expr.OpGt
		case expr.OpLeq:
			op = expr.OpGeq
		case expr.OpGt:
			op = expr.OpLt
		case expr.OpGeq:
			op = expr.OpLeq
		}
	}
	if col.NullFraction >= 1 && t.Rows > 0 {
		// Every value is NULL: no comparison ever passes.
		return true
	}
	if !col.Numeric || math.IsNaN(lit) || t.Rows == 0 {
		// Rows == 0 is vacuously empty but uninteresting; non-numeric
		// columns disable range reasoning (and comparing them could even
		// error, which pruning must preserve).
		return false
	}
	zoneLo, zoneHi := widenDown(col.Min), widenUp(col.Max)
	litLo, litHi := widenDown(lit), widenUp(lit)
	switch op {
	case expr.OpLt:
		// NaN < lit is true in the total order, so a NaN-bearing segment
		// can never be skipped on a min-side test.
		return !col.HasNaN && zoneLo >= litHi
	case expr.OpLeq:
		return !col.HasNaN && zoneLo > litHi
	case expr.OpGt:
		// NaN > lit is always false, so max-side tests ignore HasNaN.
		return zoneHi <= litLo
	case expr.OpGeq:
		return zoneHi < litLo
	case expr.OpEq:
		// NaN never equals a non-NaN literal, so equality only needs the
		// literal provably outside the finite range.
		return litHi < zoneLo || litLo > zoneHi
	}
	return false
}

// sketchCol resolves an expression to the sketch of the column it
// references (through aliases), ok=false for anything but a bound ref.
func sketchCol(e expr.Expr, t *Table) (Column, bool) {
	if t == nil {
		return Column{}, false
	}
	for {
		a, ok := e.(*expr.Alias)
		if !ok {
			break
		}
		e = a.Child
	}
	ref, ok := e.(*expr.BoundRef)
	if !ok || ref.Index < 0 || ref.Index >= len(t.Cols) {
		return Column{}, false
	}
	return t.Cols[ref.Index], true
}

// literalValue resolves a numeric literal (through unary minus).
func literalValue(e expr.Expr) (float64, bool) {
	neg := false
	for {
		if n, ok := e.(*expr.Negate); ok {
			neg = !neg
			e = n.Child
			continue
		}
		if a, ok := e.(*expr.Alias); ok {
			e = a.Child
			continue
		}
		break
	}
	lit, ok := e.(*expr.Literal)
	if !ok || !lit.Value.IsNumeric() {
		return 0, false
	}
	v := lit.Value.AsFloat()
	if neg {
		v = -v
	}
	return v, true
}

// PredicateNodes counts the evaluation-bearing nodes of a predicate —
// comparisons, arithmetic, boolean connectives, null tests — the unit the
// per-row evaluation cost constants below are expressed in.
func PredicateNodes(e expr.Expr) int {
	n := 0
	expr.Walk(e, func(sub expr.Expr) {
		switch sub.(type) {
		case *expr.Binary, *expr.Not, *expr.IsNull, *expr.Negate:
			n++
		}
	})
	if n < 1 {
		n = 1
	}
	return n
}

// Per-row evaluation costs in units of "one decoded column touch": the
// boxed row loop pays Value boxing and interface dispatch per predicate
// node, the vectorized engine amortizes the dispatch over the whole
// column. The ratios are coarse by design; only the crossover matters.
const (
	boxedPredCost = 2.0
	vecPredCost   = 0.25
)

// GateDecodeAtScan decides whether a fused stage should decode its batch
// at the source. width is the number of dense columns the decode
// materializes, predNodes the filter cost in predicate nodes, sel the
// estimated filter selectivity, and vectorizable whether the filters would
// actually run on the vectorized engine after an eager decode.
//
//	eager (decode at scan):  width + filters at vectorized cost
//	lazy  (decode after):    filters at boxed cost + sel × width
//
// Eager wins when the filter keeps enough rows that the decode is paid
// either way; lazy wins when a selective filter would make the stage
// decode mostly-discarded rows (the correlated-workload gap).
func GateDecodeAtScan(sel float64, width, predNodes int, vectorizable bool) bool {
	if width <= 0 {
		return true
	}
	eager := float64(width)
	if vectorizable {
		eager += float64(predNodes) * vecPredCost
	} else {
		// Filters refuse vectorization: eager decoding still pays the boxed
		// loop on every row, so it can only lose.
		eager += float64(predNodes) * boxedPredCost
	}
	lazy := float64(predNodes)*boxedPredCost + sel*float64(width)
	return eager <= lazy
}

// MinPartitionRows is the smallest partition an adaptive exchange will
// schedule as its own task: below it the per-task overhead (Spark pays
// milliseconds per task; the harness models 1ms) dominates the work.
const MinPartitionRows = 2048

// MinMorselRows is the smallest morsel the work-stealing runtime will cut
// out of a partition: below it the scheduling overhead of one more task
// outweighs the balance it buys. It is deliberately smaller than
// MinPartitionRows — morsels exist to split partitions that are already
// worth a task of their own.
const MinMorselRows = 512

// MorselTarget picks the rows-per-morsel for splitting one partition of
// rows rows under the given parallelism budget, ExchangeTarget-style: a
// partition splits into about four morsels per executor — enough slack
// that work stealing can rebalance a skewed partition across idle workers
// — floored at MinMorselRows so tiny partitions stay whole. The target
// depends only on (rows, executors), never on the machine's real core
// count, so morsel counts are deterministic and benchdiff can gate them.
func MorselTarget(rows, executors int) int {
	if executors < 1 {
		executors = 1
	}
	morsels := 4 * executors
	per := (rows + morsels - 1) / morsels
	if per < MinMorselRows {
		per = MinMorselRows
	}
	return per
}

// ExchangeTarget picks the adaptive rows-per-partition target for an
// exchange observing rows upstream rows under the given executor count:
// an even split across the executors, floored at MinPartitionRows. Large
// inputs keep every executor busy (ceil(rows/target) == executors); tiny
// intermediates collapse into the few tasks that amortize their overhead.
func ExchangeTarget(rows, executors int) int {
	if executors < 1 {
		executors = 1
	}
	per := (rows + executors - 1) / executors
	if per < MinPartitionRows {
		per = MinPartitionRows
	}
	return per
}

// DegradedFanoutRows is the rows-per-partition target the memory governor
// collapses exchanges to: large enough that partition count (and with it
// the number of concurrently-live shuffle buffers) drops well below the
// executor count, small enough that a single task's working set stays
// bounded.
const DegradedFanoutRows = 64 * 1024

// DegradedFanout picks the post-exchange partition count under memory
// degradation: one partition per DegradedFanoutRows rows, minimum one.
// Parallelism is sacrificed for footprint — callers additionally clamp to
// the executor count.
func DegradedFanout(rows int) int {
	n := (rows + DegradedFanoutRows - 1) / DegradedFanoutRows
	if n < 1 {
		n = 1
	}
	return n
}
