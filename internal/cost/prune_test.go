package cost

import (
	"math"
	"testing"

	"skysql/internal/expr"
	"skysql/internal/types"
)

func lt(col int, lit float64) expr.Expr {
	return expr.NewBinary(expr.OpLt, fref(col), expr.NewLiteral(types.Float(lit)))
}

func cmp(op expr.BinaryOp, col int, lit float64) expr.Expr {
	return expr.NewBinary(op, fref(col), expr.NewLiteral(types.Float(lit)))
}

// zoneTable builds a one-column sketch with the given zone map.
func zoneTable(min, max float64, rows int) *Table {
	return &Table{Rows: rows, Cols: []Column{{Min: min, Max: max, Numeric: true}}}
}

// TestProvablyEmptyComparisons pins the zone-map pruning rules on a
// segment whose column spans [10, 20].
func TestProvablyEmptyComparisons(t *testing.T) {
	z := zoneTable(10, 20, 100)
	cases := []struct {
		name string
		e    expr.Expr
		want bool
	}{
		{"lt below range", cmp(expr.OpLt, 0, 5), true},
		// col < min is truly empty, but the ulp safety margin widens both
		// sides of the boundary comparison, so exact-boundary literals stay
		// conservatively un-pruned.
		{"lt at min stays conservative", cmp(expr.OpLt, 0, 10), false},
		{"lt inside", cmp(expr.OpLt, 0, 15), false},
		{"le below range", cmp(expr.OpLeq, 0, 5), true},
		{"le at min keeps boundary row", cmp(expr.OpLeq, 0, 10), false},
		{"gt above range", cmp(expr.OpGt, 0, 25), true},
		{"gt at max stays conservative", cmp(expr.OpGt, 0, 20), false},
		{"gt inside", cmp(expr.OpGt, 0, 15), false},
		{"ge above range", cmp(expr.OpGeq, 0, 25), true},
		{"ge at max keeps boundary row", cmp(expr.OpGeq, 0, 20), false},
		{"eq below", cmp(expr.OpEq, 0, 5), true},
		{"eq above", cmp(expr.OpEq, 0, 25), true},
		{"eq inside", cmp(expr.OpEq, 0, 15), false},
	}
	for _, c := range cases {
		if got := ProvablyEmpty(c.e, z); got != c.want {
			t.Errorf("%s: ProvablyEmpty = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestProvablyEmptyFlippedOperands: literal-on-the-left comparisons must
// normalize, mirroring rangeSelectivity.
func TestProvablyEmptyFlippedOperands(t *testing.T) {
	z := zoneTable(10, 20, 100)
	// 25 < col ⇔ col > 25: provably empty on [10, 20].
	e := expr.NewBinary(expr.OpLt, expr.NewLiteral(types.Float(25)), fref(0))
	if !ProvablyEmpty(e, z) {
		t.Error("25 < col must prune a [10, 20] zone")
	}
	// 15 < col ⇔ col > 15: not empty.
	e = expr.NewBinary(expr.OpLt, expr.NewLiteral(types.Float(15)), fref(0))
	if ProvablyEmpty(e, z) {
		t.Error("15 < col must not prune a [10, 20] zone")
	}
}

// TestProvablyEmptyNaNGuards: NaN sorts below every number in the
// engine's total order, so a segment containing NaN satisfies col < lit
// for any literal — min-side pruning must be disabled by HasNaN while
// max-side pruning and equality stay sound.
func TestProvablyEmptyNaNGuards(t *testing.T) {
	z := zoneTable(10, 20, 100)
	z.Cols[0].HasNaN = true
	if ProvablyEmpty(cmp(expr.OpLt, 0, 5), z) {
		t.Error("col < 5 pruned a NaN-bearing zone: NaN < 5 is true in the total order")
	}
	if ProvablyEmpty(cmp(expr.OpLeq, 0, 5), z) {
		t.Error("col <= 5 pruned a NaN-bearing zone")
	}
	if !ProvablyEmpty(cmp(expr.OpGt, 0, 25), z) {
		t.Error("col > 25 must still prune: NaN never exceeds a finite literal")
	}
	if !ProvablyEmpty(cmp(expr.OpEq, 0, 5), z) {
		t.Error("col = 5 must still prune: NaN never equals a finite literal")
	}
	// A NaN literal proves nothing.
	if ProvablyEmpty(cmp(expr.OpLt, 0, math.NaN()), z) {
		t.Error("NaN literal must never prune")
	}
}

// TestProvablyEmptyNullAndNonNumeric: an all-NULL column never passes a
// comparison (NULL-valued predicate), so it prunes; a non-numeric column
// must never prune, since a mixed-kind comparison errors at runtime and
// pruning would swallow the error.
func TestProvablyEmptyNullAndNonNumeric(t *testing.T) {
	allNull := &Table{Rows: 10, Cols: []Column{{
		Min: math.Inf(1), Max: math.Inf(-1), Numeric: true, NullFraction: 1,
	}}}
	if !ProvablyEmpty(lt(0, 5), allNull) {
		t.Error("an all-NULL column must prune any comparison")
	}
	nonNum := &Table{Rows: 10, Cols: []Column{{Numeric: false}}}
	if ProvablyEmpty(lt(0, 1e18), nonNum) {
		t.Error("a non-numeric column must never prune (comparison may error)")
	}
	empty := zoneTable(10, 20, 0)
	if ProvablyEmpty(lt(0, 5), empty) {
		t.Error("a zero-row sketch proves nothing")
	}
}

// TestProvablyEmptyConnectives: AND prunes when either side does, OR only
// when both do; IsNull prunes against a null-free column and its negation
// against an all-NULL one.
func TestProvablyEmptyConnectives(t *testing.T) {
	z := zoneTable(10, 20, 100)
	emptyCmp := cmp(expr.OpLt, 0, 5)
	liveCmp := cmp(expr.OpLt, 0, 15)
	and := expr.NewBinary(expr.OpAnd, liveCmp, emptyCmp)
	if !ProvablyEmpty(and, z) {
		t.Error("AND with one empty side must prune")
	}
	orBoth := expr.NewBinary(expr.OpOr, emptyCmp, cmp(expr.OpGt, 0, 25))
	if !ProvablyEmpty(orBoth, z) {
		t.Error("OR of two empty sides must prune")
	}
	orHalf := expr.NewBinary(expr.OpOr, emptyCmp, liveCmp)
	if ProvablyEmpty(orHalf, z) {
		t.Error("OR with one live side must not prune")
	}
	if !ProvablyEmpty(expr.NewIsNull(fref(0), false), z) {
		t.Error("IS NULL must prune a null-free zone")
	}
}

// TestProvablyEmptyUlpMargin: literals within a couple of ulps of the
// zone bound must not prune — the footer's float64 bounds are exact here,
// but the margin guards against any representation drift.
func TestProvablyEmptyUlpMargin(t *testing.T) {
	min := 10.0
	z := zoneTable(min, 20, 100)
	justBelow := math.Nextafter(min, math.Inf(-1))
	if ProvablyEmpty(cmp(expr.OpLt, 0, justBelow), z) {
		t.Error("a literal one ulp below min must stay un-pruned inside the safety margin")
	}
}
