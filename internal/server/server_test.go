package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"skysql"
	"skysql/internal/datagen"
	"skysql/internal/server"
)

// post sends a JSON body and returns the status plus the raw response.
func post(t *testing.T, c *http.Client, url string, body interface{}) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func decodeErr(t *testing.T, raw []byte) server.ErrorResponse {
	t.Helper()
	var e server.ErrorResponse
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("decoding error response %q: %v", raw, err)
	}
	return e
}

func decodeQuery(t *testing.T, raw []byte) server.QueryResponse {
	t.Helper()
	var q server.QueryResponse
	if err := json.Unmarshal(raw, &q); err != nil {
		t.Fatalf("decoding query response: %v", err)
	}
	return q
}

func getStats(t *testing.T, c *http.Client, base string) server.Stats {
	t.Helper()
	resp, err := c.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// hotels is a fixed 4-row table whose skyline (price MIN, distance MIN)
// is known by inspection: rows 1 and 3 dominate 2 and 4.
var hotels = server.TableRequest{
	Name: "hotels",
	Columns: []server.Column{
		{Name: "id", Type: "BIGINT"},
		{Name: "price", Type: "DOUBLE"},
		{Name: "distance", Type: "DOUBLE"},
	},
	Rows: [][]interface{}{
		{1, 50.0, 4.0},
		{2, 80.0, 5.0},
		{3, 90.0, 1.0},
		{4, 95.0, 2.0},
	},
}

func TestQueryEndpoint(t *testing.T) {
	sess := skysql.NewSession(skysql.WithExecutors(2))
	defer sess.Close()
	ts := httptest.NewServer(server.New(sess))
	defer ts.Close()
	c := ts.Client()

	if status, raw := post(t, c, ts.URL+"/tables", hotels); status != http.StatusOK {
		t.Fatalf("create table: %d %s", status, raw)
	}
	const sql = "SELECT * FROM hotels SKYLINE OF price MIN, distance MIN"
	status, raw := post(t, c, ts.URL+"/query", server.QueryRequest{SQL: sql})
	if status != http.StatusOK {
		t.Fatalf("query: %d %s", status, raw)
	}
	q := decodeQuery(t, raw)
	if len(q.Columns) != 3 || q.Columns[0].Name != "id" || q.Columns[1].Type != "DOUBLE" {
		t.Errorf("columns = %+v", q.Columns)
	}
	if q.RowCount != 2 || len(q.Rows) != 2 {
		t.Fatalf("skyline rows = %d (%v), want 2", q.RowCount, q.Rows)
	}
	ids := map[float64]bool{}
	for _, r := range q.Rows {
		ids[r[0].(float64)] = true
	}
	if !ids[1] || !ids[3] {
		t.Errorf("skyline ids = %v, want {1, 3}", ids)
	}
	if q.Metrics.Stages == 0 {
		t.Error("metrics must report executed stages")
	}

	// The same query again must return a bit-identical body (modulo the
	// wall-clock duration and cache counters, which the repeat flips).
	status2, raw2 := post(t, c, ts.URL+"/query", server.QueryRequest{SQL: sql})
	if status2 != http.StatusOK {
		t.Fatalf("repeat query: %d %s", status2, raw2)
	}
	q2 := decodeQuery(t, raw2)
	if !reflect.DeepEqual(q.Rows, q2.Rows) || !reflect.DeepEqual(q.Columns, q2.Columns) {
		t.Error("repeated query returned different rows")
	}

	st := getStats(t, c, ts.URL)
	if st.Server.Queries != 2 {
		t.Errorf("queries_total = %d, want 2", st.Server.Queries)
	}
	if len(st.Catalog.Tables) != 1 || st.Catalog.Tables[0] != "hotels" {
		t.Errorf("catalog tables = %v", st.Catalog.Tables)
	}
}

func TestBadRequests(t *testing.T) {
	sess := skysql.NewSession(skysql.WithExecutors(1))
	defer sess.Close()
	ts := httptest.NewServer(server.New(sess))
	defer ts.Close()
	c := ts.Client()

	cases := []struct {
		name   string
		status int
		run    func() (int, []byte)
	}{
		{"empty sql", http.StatusBadRequest, func() (int, []byte) {
			return post(t, c, ts.URL+"/query", server.QueryRequest{SQL: "  "})
		}},
		{"unknown table", http.StatusBadRequest, func() (int, []byte) {
			return post(t, c, ts.URL+"/query", server.QueryRequest{SQL: "SELECT * FROM nope"})
		}},
		{"malformed json", http.StatusBadRequest, func() (int, []byte) {
			resp, err := c.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{nope")))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			return resp.StatusCode, raw
		}},
		{"GET on POST endpoint", http.StatusMethodNotAllowed, func() (int, []byte) {
			resp, err := c.Get(ts.URL + "/query")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			return resp.StatusCode, raw
		}},
		{"drop without name", http.StatusBadRequest, func() (int, []byte) {
			return post(t, c, ts.URL+"/drop", server.DropRequest{})
		}},
	}
	for _, tc := range cases {
		status, raw := tc.run()
		if status != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.status, raw)
			continue
		}
		if e := decodeErr(t, raw); e.Code != "bad_request" {
			t.Errorf("%s: code %q, want bad_request", tc.name, e.Code)
		}
	}
}

func TestTablesAppendDrop(t *testing.T) {
	sess := skysql.NewSession(skysql.WithExecutors(1))
	defer sess.Close()
	ts := httptest.NewServer(server.New(sess))
	defer ts.Close()
	c := ts.Client()

	if status, raw := post(t, c, ts.URL+"/tables", hotels); status != http.StatusOK {
		t.Fatalf("create: %d %s", status, raw)
	}
	count := func() int {
		status, raw := post(t, c, ts.URL+"/query", server.QueryRequest{SQL: "SELECT * FROM hotels"})
		if status != http.StatusOK {
			t.Fatalf("count query: %d %s", status, raw)
		}
		return decodeQuery(t, raw).RowCount
	}
	if got := count(); got != 4 {
		t.Fatalf("initial rows = %d, want 4", got)
	}
	status, raw := post(t, c, ts.URL+"/append", server.AppendRequest{
		Name: "hotels",
		Rows: [][]interface{}{{5, 40.0, 6.0}, {6, 99.0, 9.0}},
	})
	if status != http.StatusOK {
		t.Fatalf("append: %d %s", status, raw)
	}
	if got := count(); got != 6 {
		t.Fatalf("rows after append = %d, want 6", got)
	}
	// Width mismatch is the table's own validation, surfaced as 400.
	if status, _ := post(t, c, ts.URL+"/append", server.AppendRequest{
		Name: "hotels", Rows: [][]interface{}{{7, 1.0}},
	}); status != http.StatusBadRequest {
		t.Errorf("short append row: status %d, want 400", status)
	}
	if status, _ := post(t, c, ts.URL+"/drop", server.DropRequest{Name: "hotels"}); status != http.StatusOK {
		t.Fatalf("drop: %d", status)
	}
	if status, _ := post(t, c, ts.URL+"/query", server.QueryRequest{SQL: "SELECT * FROM hotels"}); status != http.StatusBadRequest {
		t.Errorf("query after drop: status %d, want 400", status)
	}
}

// TestQueryDeadline504 pins the per-request timeout path end to end: a
// skyline over a table far too large for a 1ms budget must come back 504
// with the stable "deadline" code — even when the final execution rounds
// were already running when the deadline fired (the cooperative-
// cancellation recheck in Session.runCtx).
func TestQueryDeadline504(t *testing.T) {
	sess := skysql.NewSession(skysql.WithExecutors(2))
	defer sess.Close()
	tab := datagen.Synthetic(datagen.AntiCorrelated, 30000, 4, datagen.Config{Seed: 1, Complete: true})
	sess.RegisterTable(tab)
	ts := httptest.NewServer(server.New(sess))
	defer ts.Close()

	status, raw := post(t, ts.Client(), ts.URL+"/query", server.QueryRequest{
		SQL:           "SELECT * FROM t SKYLINE OF COMPLETE d1 MIN, d2 MIN, d3 MIN, d4 MIN",
		TimeoutMillis: 1,
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", status, raw)
	}
	if e := decodeErr(t, raw); e.Code != "deadline" {
		t.Errorf("code = %q, want deadline", e.Code)
	}
}

// TestAdmission429 drives the admission controller over HTTP: with one
// execution slot and no queue, a doomed long-running blocker saturates
// the server and a concurrent probe is turned away with 429; once the
// blocker drains, the same probe succeeds.
func TestAdmission429(t *testing.T) {
	sess := skysql.NewSession(
		skysql.WithExecutors(2),
		skysql.WithMaxConcurrentQueries(1),
	)
	defer sess.Close()
	tab := datagen.Synthetic(datagen.AntiCorrelated, 30000, 4, datagen.Config{Seed: 1, Complete: true})
	sess.RegisterTable(tab)
	probe := datagen.Synthetic(datagen.Independent, 32, 2, datagen.Config{Seed: 2})
	probe.Name = "probe"
	sess.RegisterTable(probe)
	ts := httptest.NewServer(server.New(sess))
	defer ts.Close()
	c := ts.Client()

	blockerDone := make(chan int, 1)
	go func() {
		status, _ := post(t, c, ts.URL+"/query", server.QueryRequest{
			SQL:           "SELECT * FROM t SKYLINE OF COMPLETE d1 MIN, d2 MIN, d3 MIN, d4 MIN",
			TimeoutMillis: 2000,
		})
		blockerDone <- status
	}()
	deadline := time.Now().Add(10 * time.Second)
	for getStats(t, c, ts.URL).Admission.InFlight < 1 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never entered execution")
		}
		time.Sleep(time.Millisecond)
	}

	const probeSQL = "SELECT * FROM probe SKYLINE OF d1 MIN, d2 MIN"
	status, raw := post(t, c, ts.URL+"/query", server.QueryRequest{SQL: probeSQL})
	if status != http.StatusTooManyRequests {
		t.Fatalf("probe under saturation: %d (%s), want 429", status, raw)
	}
	if e := decodeErr(t, raw); e.Code != "admission_rejected" {
		t.Errorf("code = %q, want admission_rejected", e.Code)
	}

	if bs := <-blockerDone; bs != http.StatusGatewayTimeout {
		t.Errorf("blocker finished %d, want 504 (timeout_ms doomed it)", bs)
	}
	if status, raw := post(t, c, ts.URL+"/query", server.QueryRequest{SQL: probeSQL}); status != http.StatusOK {
		t.Errorf("probe after drain: %d (%s), want 200", status, raw)
	}
	st := getStats(t, c, ts.URL)
	if st.Admission.Rejected < 1 {
		t.Errorf("rejected = %d, want >= 1", st.Admission.Rejected)
	}
	if st.Admission.InFlight != 0 {
		t.Errorf("in-flight after drain = %d, want 0", st.Admission.InFlight)
	}
}

// TestConcurrentMixedLoad is the serving tier's race test: one shared
// session under simultaneous queriers, appenders, and create/drop churn.
// Query bodies must stay bit-identical to serial references, appends must
// all land, churn must never surface a 5xx, and the admission controller
// must end drained.
func TestConcurrentMixedLoad(t *testing.T) {
	sess := skysql.NewSession(
		skysql.WithExecutors(4),
		skysql.WithResultCache(8<<20),
		skysql.WithMaxConcurrentQueries(4),
		skysql.WithAdmissionQueue(8),
		skysql.WithGlobalMemoryBudget(0), // metering-only: stats, no degradation
	)
	defer sess.Close()
	// q: static query target — its result set never changes, so every
	// concurrent read must match the serial reference bytes.
	q := datagen.Synthetic(datagen.AntiCorrelated, 4000, 4, datagen.Config{Seed: 3, Complete: true})
	q.Name = "q"
	sess.RegisterTable(q)
	// a: append target with a fixed initial population.
	a := datagen.Synthetic(datagen.Independent, 100, 2, datagen.Config{Seed: 4})
	a.Name = "a"
	sess.RegisterTable(a)
	ts := httptest.NewServer(server.New(sess))
	defer ts.Close()
	c := ts.Client()

	shapes := []string{
		"SELECT * FROM q SKYLINE OF COMPLETE d1 MIN, d2 MIN",
		"SELECT * FROM q SKYLINE OF COMPLETE d1 MIN, d2 MIN, d3 MIN",
		"SELECT * FROM q SKYLINE OF COMPLETE d1 MIN, d2 MIN, d3 MIN, d4 MIN",
	}
	// Serial references, taken before any concurrency starts.
	ref := make([]string, len(shapes))
	for i, sql := range shapes {
		status, raw := post(t, c, ts.URL+"/query", server.QueryRequest{SQL: sql})
		if status != http.StatusOK {
			t.Fatalf("reference %d: %d %s", i, status, raw)
		}
		rows, err := json.Marshal(decodeQuery(t, raw).Rows)
		if err != nil {
			t.Fatal(err)
		}
		ref[i] = string(rows)
	}

	const (
		queriers  = 4
		queryIter = 20
		appenders = 2
		appIter   = 15
		appRows   = 3
		churnIter = 10
	)
	var wg sync.WaitGroup
	errs := make(chan error, queriers*queryIter+appenders*appIter+churnIter)

	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < queryIter; i++ {
				k := (g + i) % len(shapes)
				status, raw := post(t, c, ts.URL+"/query", server.QueryRequest{SQL: shapes[k]})
				switch status {
				case http.StatusOK:
					rows, err := json.Marshal(decodeQuery(t, raw).Rows)
					if err != nil {
						errs <- err
						return
					}
					if string(rows) != ref[k] {
						errs <- fmt.Errorf("querier %d iter %d: shape %d diverged from serial reference", g, i, k)
						return
					}
				case http.StatusTooManyRequests:
					// Bounded admission under burst is legitimate.
				default:
					errs <- fmt.Errorf("querier %d iter %d: unexpected status %d (%s)", g, i, status, raw)
					return
				}
			}
		}(g)
	}
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < appIter; i++ {
				// Synthetic tables carry an id column ahead of the dims.
				rows := make([][]interface{}, appRows)
				for j := range rows {
					rows[j] = []interface{}{float64(g*1000 + i*10 + j), float64(j), float64(j + 1)}
				}
				status, raw := post(t, c, ts.URL+"/append", server.AppendRequest{Name: "a", Rows: rows})
				if status != http.StatusOK {
					errs <- fmt.Errorf("appender %d iter %d: %d %s", g, i, status, raw)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		churnTable := server.TableRequest{
			Name:    "d",
			Columns: []server.Column{{Name: "x", Type: "BIGINT"}},
			Rows:    [][]interface{}{{1}, {2}},
		}
		for i := 0; i < churnIter; i++ {
			if status, raw := post(t, c, ts.URL+"/tables", churnTable); status != http.StatusOK {
				errs <- fmt.Errorf("churn create %d: %d %s", i, status, raw)
				return
			}
			// Racing queriers never touch "d", but a concurrent /stats or
			// /query against it may land between create and drop; both a 200
			// and a 400 (just dropped) are fine — a 5xx is not.
			status, raw := post(t, c, ts.URL+"/query", server.QueryRequest{SQL: "SELECT * FROM d"})
			if status != http.StatusOK && status != http.StatusBadRequest && status != http.StatusTooManyRequests {
				errs <- fmt.Errorf("churn query %d: %d %s", i, status, raw)
				return
			}
			if status, raw := post(t, c, ts.URL+"/drop", server.DropRequest{Name: "d"}); status != http.StatusOK {
				errs <- fmt.Errorf("churn drop %d: %d %s", i, status, raw)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Post-conditions: admission drained, all appends landed, catalog sane.
	st := getStats(t, c, ts.URL)
	if st.Admission.InFlight != 0 || st.Admission.Waiting != 0 {
		t.Errorf("admission not drained: in-flight %d, waiting %d", st.Admission.InFlight, st.Admission.Waiting)
	}
	if st.Governor.InFlight != 0 {
		t.Errorf("governor pool not drained: %d queries attached", st.Governor.InFlight)
	}
	status, raw := post(t, c, ts.URL+"/query", server.QueryRequest{SQL: "SELECT * FROM a"})
	if status != http.StatusOK {
		t.Fatalf("final count query: %d %s", status, raw)
	}
	want := 100 + appenders*appIter*appRows
	if got := decodeQuery(t, raw).RowCount; got != want {
		t.Errorf("appended table rows = %d, want %d (torn appends)", got, want)
	}
	for _, name := range getStats(t, c, ts.URL).Catalog.Tables {
		if name != "q" && name != "a" && name != "d" {
			t.Errorf("unexpected catalog entry %q", name)
		}
	}
}
