// Package server is skysqld's HTTP/JSON layer: a long-lived query server
// over one shared skysql.Session. Every in-flight request executes
// against the same catalog, work-stealing worker pool, result cache,
// admission controller, and global memory governor — the session IS the
// shared state, and this package is a thin, stateless translation of
// HTTP requests onto it.
//
// Endpoints (see docs/skysqld.md for the full API reference):
//
//	POST /query   execute SQL, returning rows plus per-query metrics
//	POST /tables  create (or replace) an in-memory table from JSON rows
//	POST /append  append JSON rows to a registered table
//	POST /drop    drop a table
//	GET  /stats   server / admission / governor / cache / pool counters
//	GET  /healthz liveness probe
//
// Admission rejections surface as HTTP 429, global or per-query memory
// budget exhaustion as 503, deadline expiry as 504, and malformed or
// unresolvable queries as 400 — so an open-loop load generator can bucket
// outcomes without parsing error prose.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"skysql"
	"skysql/internal/cluster"
	"skysql/internal/types"

	"context"
)

// MaxRequestBytes bounds a request body; larger bodies fail with 400
// before any decoding work.
const MaxRequestBytes = 64 << 20

// Server translates HTTP requests onto one shared skysql.Session.
type Server struct {
	sess *skysql.Session
	mux  *http.ServeMux

	queries atomic.Int64 // POST /query requests that reached execution
	errors  atomic.Int64 // requests answered with a non-2xx status
}

// New creates a server over the given session. The session's own options
// decide the serving policy: WithMaxConcurrentQueries/WithAdmissionQueue
// for admission, WithGlobalMemoryBudget for the shared governor,
// WithResultCache for cross-request caching.
func New(sess *skysql.Session) *Server {
	s := &Server{sess: sess, mux: http.NewServeMux()}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/tables", s.handleTables)
	s.mux.HandleFunc("/append", s.handleAppend)
	s.mux.HandleFunc("/drop", s.handleDrop)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Session returns the wrapped session (tests reach through for stats).
func (s *Server) Session() *skysql.Session { return s.sess }

// ---- request/response shapes ----

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	SQL string `json:"sql"`
	// TimeoutMillis, when positive, bounds this query's execution wall
	// clock (on top of any session-wide WithQueryTimeout).
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// Column describes one output column of a query result.
type Column struct {
	Name     string `json:"name"`
	Type     string `json:"type"`
	Nullable bool   `json:"nullable"`
}

// QueryMetrics is the deterministic slice of a query's execution
// counters, flattened for JSON. Wall-clock duration is reported beside
// it, not inside it: everything in here is a pure function of (query
// sequence, data, configuration).
type QueryMetrics struct {
	Stages           int64    `json:"stages"`
	RowsShuffled     int64    `json:"rows_shuffled"`
	PeakBytes        int64    `json:"peak_bytes"`
	CacheHits        int64    `json:"cache_hits"`
	CacheMisses      int64    `json:"cache_misses"`
	Morsels          int64    `json:"morsels"`
	Steals           int64    `json:"steals"`
	TaskRetries      int64    `json:"task_retries"`
	DegradationSteps int64    `json:"degradation_steps"`
	Degradations     []string `json:"degradations,omitempty"`
	SegmentsPruned   int64    `json:"segments_pruned"`
	SegmentsSpilled  int64    `json:"segments_spilled"`
}

// QueryResponse is the body of a successful POST /query.
type QueryResponse struct {
	Columns    []Column        `json:"columns"`
	Rows       [][]interface{} `json:"rows"`
	RowCount   int             `json:"row_count"`
	DurationMS float64         `json:"duration_ms"`
	Metrics    QueryMetrics    `json:"metrics"`
}

// ErrorResponse is the body of every non-2xx answer. Code is a stable
// machine-readable bucket: "bad_request", "admission_rejected",
// "memory_budget", "deadline", "canceled", "internal".
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// TableRequest is the body of POST /tables.
type TableRequest struct {
	Name    string          `json:"name"`
	Columns []Column        `json:"columns"`
	Rows    [][]interface{} `json:"rows"`
}

// AppendRequest is the body of POST /append.
type AppendRequest struct {
	Name string          `json:"name"`
	Rows [][]interface{} `json:"rows"`
}

// DropRequest is the body of POST /drop.
type DropRequest struct {
	Name string `json:"name"`
}

// Stats is the body of GET /stats. Cumulative counters are per-process;
// instantaneous gauges are labeled in docs/skysqld.md.
type Stats struct {
	Server    ServerStats           `json:"server"`
	Admission skysql.AdmissionStats `json:"admission"`
	Governor  skysql.GovernorStats  `json:"governor"`
	Cache     CacheStats            `json:"cache"`
	Pool      PoolStats             `json:"pool"`
	Catalog   CatalogStats          `json:"catalog"`
}

// ServerStats counts requests at the HTTP layer.
type ServerStats struct {
	Queries int64 `json:"queries_total"`
	Errors  int64 `json:"errors_total"`
}

// CacheStats mirrors the session's result-cache counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Upgrades  int64 `json:"incremental_upgrades"`
	Entries   int   `json:"entries"`
	UsedBytes int64 `json:"used_bytes"`
}

// PoolStats describes the shared execution substrate.
type PoolStats struct {
	Workers   int `json:"workers"`
	Executors int `json:"executors"`
}

// CatalogStats lists the registered tables.
type CatalogStats struct {
	Tables []string `json:"tables"`
}

// ---- handlers ----

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		s.fail(w, http.StatusBadRequest, "bad_request", "empty sql")
		return
	}
	ctx := r.Context()
	if req.TimeoutMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMillis)*time.Millisecond)
		defer cancel()
	}
	df, err := s.sess.SQL(req.SQL)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	s.queries.Add(1)
	rows, err := df.CollectContext(ctx)
	if err != nil {
		status, code := classify(err)
		s.fail(w, status, code, err.Error())
		return
	}
	schema, err := df.Schema()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	resp := QueryResponse{
		Columns:    encodeColumns(schema),
		Rows:       encodeRows(rows),
		RowCount:   len(rows),
		DurationMS: float64(df.Duration()) / float64(time.Millisecond),
		Metrics:    encodeMetrics(df.Metrics()),
	}
	s.reply(w, http.StatusOK, resp)
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	var req TableRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	if req.Name == "" || len(req.Columns) == 0 {
		s.fail(w, http.StatusBadRequest, "bad_request", "table name and columns are required")
		return
	}
	fields := make([]types.Field, len(req.Columns))
	for i, c := range req.Columns {
		kind, err := parseKind(c.Type)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		fields[i] = types.Field{Name: strings.ToLower(c.Name), Type: kind, Nullable: c.Nullable}
	}
	schema := types.NewSchema(fields...)
	rows, err := decodeRows(req.Rows, schema)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if err := s.sess.CreateTable(req.Name, schema, rows); err != nil {
		s.fail(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	s.reply(w, http.StatusOK, map[string]interface{}{"ok": true, "table": strings.ToLower(req.Name), "rows": len(rows)})
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req AppendRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	if req.Name == "" {
		s.fail(w, http.StatusBadRequest, "bad_request", "table name is required")
		return
	}
	rows, err := decodeRowsLoose(req.Rows)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if err := s.sess.AppendRows(req.Name, rows); err != nil {
		s.fail(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	s.reply(w, http.StatusOK, map[string]interface{}{"ok": true, "rows": len(rows)})
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	var req DropRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	if req.Name == "" {
		s.fail(w, http.StatusBadRequest, "bad_request", "table name is required")
		return
	}
	s.sess.DropTable(req.Name)
	s.reply(w, http.StatusOK, map[string]interface{}{"ok": true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "bad_request", "GET only")
		return
	}
	cs := s.sess.ResultCacheStats()
	s.reply(w, http.StatusOK, Stats{
		Server:    ServerStats{Queries: s.queries.Load(), Errors: s.errors.Load()},
		Admission: s.sess.AdmissionStats(),
		Governor:  s.sess.GovernorStats(),
		Cache: CacheStats{Hits: cs.Hits, Misses: cs.Misses, Evictions: cs.Evictions,
			Upgrades: cs.Upgrades, Entries: cs.Entries, UsedBytes: cs.UsedBytes},
		Pool:    PoolStats{Workers: s.sess.PoolSize(), Executors: s.sess.Executors()},
		Catalog: CatalogStats{Tables: s.sess.Tables()},
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.reply(w, http.StatusOK, map[string]bool{"ok": true})
}

// ---- plumbing ----

// decodePost enforces method + body discipline for the mutating
// endpoints; on failure it has already written the error response.
func (s *Server) decodePost(w http.ResponseWriter, r *http.Request, into interface{}) bool {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "bad_request", "POST only")
		return false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxRequestBytes+1))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad_request", "reading body: "+err.Error())
		return false
	}
	if len(body) > MaxRequestBytes {
		s.fail(w, http.StatusBadRequest, "bad_request", "request body too large")
		return false
	}
	if err := json.Unmarshal(body, into); err != nil {
		s.fail(w, http.StatusBadRequest, "bad_request", "decoding JSON: "+err.Error())
		return false
	}
	return true
}

func (s *Server) reply(w http.ResponseWriter, status int, body interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}

func (s *Server) fail(w http.ResponseWriter, status int, code, msg string) {
	s.errors.Add(1)
	s.reply(w, status, ErrorResponse{Error: msg, Code: code})
}

// classify buckets an execution error into (HTTP status, stable code).
func classify(err error) (int, string) {
	switch {
	case errors.Is(err, skysql.ErrAdmission):
		return http.StatusTooManyRequests, "admission_rejected"
	case errors.Is(err, cluster.ErrMemoryBudget):
		return http.StatusServiceUnavailable, "memory_budget"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, cluster.ErrCanceled):
		return 499, "canceled" // nginx's client-closed-request; no stdlib constant
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// ---- value conversion ----

func encodeColumns(schema *types.Schema) []Column {
	out := make([]Column, schema.Len())
	for i, f := range schema.Fields {
		out[i] = Column{Name: f.Name, Type: f.Type.String(), Nullable: f.Nullable}
	}
	return out
}

func encodeRows(rows []types.Row) [][]interface{} {
	out := make([][]interface{}, len(rows))
	for i, r := range rows {
		rec := make([]interface{}, len(r))
		for j, v := range r {
			rec[j] = encodeValue(v)
		}
		out[i] = rec
	}
	return out
}

func encodeValue(v types.Value) interface{} {
	switch v.Kind() {
	case types.KindNull:
		return nil
	case types.KindInt:
		return v.AsInt()
	case types.KindFloat:
		return v.AsFloat()
	case types.KindString:
		return v.AsString()
	case types.KindBool:
		return v.AsBool()
	}
	return v.String()
}

// decodeRows converts JSON rows against a schema: numbers land as the
// declared kind (a JSON 3 or 3.0 is a valid BIGINT; 3.5 is not), null as
// SQL NULL.
func decodeRows(in [][]interface{}, schema *types.Schema) ([]types.Row, error) {
	rows := make([]types.Row, len(in))
	for i, rec := range in {
		if len(rec) != schema.Len() {
			return nil, fmt.Errorf("row %d has %d values, schema has %d columns", i, len(rec), schema.Len())
		}
		row := make(types.Row, len(rec))
		for j, cell := range rec {
			v, err := decodeValue(cell, schema.Fields[j].Type)
			if err != nil {
				return nil, fmt.Errorf("row %d column %q: %w", i, schema.Fields[j].Name, err)
			}
			row[j] = v
		}
		rows[i] = row
	}
	return rows, nil
}

// decodeRowsLoose converts JSON rows without a schema (appends — the
// table's own validation catches width mismatches): JSON numbers become
// DOUBLE unless integral, strings STRING, booleans BOOLEAN, null NULL.
func decodeRowsLoose(in [][]interface{}) ([]types.Row, error) {
	rows := make([]types.Row, len(in))
	for i, rec := range in {
		row := make(types.Row, len(rec))
		for j, cell := range rec {
			switch c := cell.(type) {
			case nil:
				row[j] = types.Null
			case bool:
				row[j] = types.Bool(c)
			case string:
				row[j] = types.Str(c)
			case float64:
				row[j] = types.Float(c)
			default:
				return nil, fmt.Errorf("row %d column %d: unsupported JSON value %T", i, j, cell)
			}
		}
		rows[i] = row
	}
	return rows, nil
}

func decodeValue(cell interface{}, kind types.Kind) (types.Value, error) {
	if cell == nil {
		return types.Null, nil
	}
	switch kind {
	case types.KindInt:
		f, ok := cell.(float64)
		if !ok || f != float64(int64(f)) {
			return types.Null, fmt.Errorf("expected integral BIGINT, got %v", cell)
		}
		return types.Int(int64(f)), nil
	case types.KindFloat:
		f, ok := cell.(float64)
		if !ok {
			return types.Null, fmt.Errorf("expected DOUBLE, got %T", cell)
		}
		return types.Float(f), nil
	case types.KindString:
		s, ok := cell.(string)
		if !ok {
			return types.Null, fmt.Errorf("expected STRING, got %T", cell)
		}
		return types.Str(s), nil
	case types.KindBool:
		b, ok := cell.(bool)
		if !ok {
			return types.Null, fmt.Errorf("expected BOOLEAN, got %T", cell)
		}
		return types.Bool(b), nil
	}
	return types.Null, fmt.Errorf("unsupported column kind %v", kind)
}

func parseKind(name string) (types.Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "BIGINT", "INT", "INTEGER", "LONG":
		return types.KindInt, nil
	case "DOUBLE", "FLOAT", "REAL":
		return types.KindFloat, nil
	case "STRING", "VARCHAR", "TEXT":
		return types.KindString, nil
	case "BOOLEAN", "BOOL":
		return types.KindBool, nil
	}
	return types.KindNull, fmt.Errorf("unknown column type %q (BIGINT, DOUBLE, STRING, BOOLEAN)", name)
}

func encodeMetrics(m *skysql.Metrics) QueryMetrics {
	if m == nil {
		return QueryMetrics{}
	}
	return QueryMetrics{
		Stages:           m.StagesExecuted(),
		RowsShuffled:     m.RowsShuffled(),
		PeakBytes:        m.PeakBytes(),
		CacheHits:        m.CacheHits(),
		CacheMisses:      m.CacheMisses(),
		Morsels:          m.MorselsExecuted(),
		Steals:           m.Steals(),
		TaskRetries:      m.TaskRetries(),
		DegradationSteps: m.DegradationSteps(),
		Degradations:     m.Degradations(),
		SegmentsPruned:   m.SegmentsPruned(),
		SegmentsSpilled:  m.SegmentsSpilled(),
	}
}
