package skysql

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"skysql/internal/catalog"
	"skysql/internal/chaos"
	"skysql/internal/cluster"
	"skysql/internal/core"
	"skysql/internal/physical"
	"skysql/internal/resultcache"
	"skysql/internal/storage"
)

// Session is the entry point of the engine: it owns the catalog and the
// execution configuration, and compiles SQL strings or DataFrame plans
// into runnable queries.
type Session struct {
	engine       *core.Engine
	executors    int
	strategy     SkylineStrategy
	simulate     bool
	windowCap    int
	noFusion     bool
	noKernel     bool
	noVector     bool
	zorderSFS    bool
	adaptiveRows int
	noAdaptive   bool
	noMorsel     bool
	poolSize     int
	injector     *chaos.Injector
	taskRetries  int
	queryTimeout time.Duration
	memoryBudget int64
	segStorage   bool
	segDir       string
	segRows      int
	spillDir     string
	noSegPrune   bool
	cache        *resultcache.Cache

	// Serving-tier configuration (serving.go): admission bounds and the
	// cross-query memory pool. Zero values mean the pre-serving behaviour.
	maxConcurrent int
	queueDepth    int
	governed      bool
	globalBudget  int64
	admission     *admission
	governor      *cluster.Governor

	// appendMu serializes AppendRows' append + cache-maintenance pair, so
	// concurrent appends offer their batches to the result cache in the
	// same order the table received them — the order contract
	// stream.Incremental's bit-identity rests on.
	appendMu sync.Mutex

	poolMu sync.Mutex
	pool   *cluster.WorkerPool
}

// Option configures a session.
type Option func(*Session)

// WithExecutors sets the parallelism budget (the paper's executor-count
// parameter; default 4).
func WithExecutors(n int) Option {
	return func(s *Session) {
		if n > 0 {
			s.executors = n
		}
	}
}

// WithSkylineStrategy overrides the automatic algorithm selection of the
// paper's Listing 8.
func WithSkylineStrategy(st SkylineStrategy) Option {
	return func(s *Session) { s.strategy = st }
}

// WithSimulatedTime switches query timing into discrete-event mode: tasks
// of a parallel stage execute one at a time and the reported duration is
// the makespan the configured executor count would achieve. Use it to
// study executor scaling on machines with fewer cores than executors (it
// is how the evaluation harness reproduces the paper's cluster results).
func WithSimulatedTime() Option {
	return func(s *Session) { s.simulate = true }
}

// WithSkylineWindow bounds the Block-Nested-Loop window of the complete
// skyline algorithms to n tuples; the engine then uses the original BNL's
// multi-pass overflow handling instead of growing the window without
// limit. 0 (the default) means unbounded.
func WithSkylineWindow(n int) Option {
	return func(s *Session) {
		if n > 0 {
			s.windowCap = n
		}
	}
}

// WithoutStageFusion disables the exchange-bounded stage compiler: every
// physical operator then executes as its own fully-materialized task
// round instead of fusing narrow chains into single-pass pipelines. The
// default (fused) execution is result-identical; this switch exists for
// A/B comparison and debugging.
func WithoutStageFusion() Option {
	return func(s *Session) { s.noFusion = true }
}

// WithoutColumnarKernel disables the columnar dominance kernel: skyline
// operators then run every dominance test through the boxed compare path
// instead of decode-once float64 column batches, and exchanges stop
// carrying the decoded batches as sidecars. The default (kernel) execution
// is result-identical; this switch exists for A/B ablation and debugging,
// mirroring WithoutStageFusion.
func WithoutColumnarKernel() Option {
	return func(s *Session) { s.noKernel = true }
}

// WithoutVectorizedExprs disables the vectorized expression engine:
// filters, projections, and extremum passes then evaluate boxed, row at a
// time, and fused stages stop decoding their columnar batch at the scan
// (cluster.Context.DecodeAtScan). The default (vectorized) execution is
// result-identical; this switch exists for A/B ablation and debugging,
// mirroring WithoutColumnarKernel.
func WithoutVectorizedExprs() Option {
	return func(s *Session) { s.noVector = true }
}

// WithZorderSFSPresort switches the SortFilterSkyline strategy's presort
// from the entropy score to the Z-order space-filling curve: the same
// skyline, computed over a processing order that clusters tuples close in
// the dimension space, which tends to surface dominating window tuples
// earlier (the ROADMAP's space-filling-curve presort; ablated in skybench).
func WithZorderSFSPresort() Option {
	return func(s *Session) { s.zorderSFS = true }
}

// WithAdaptiveExchange overrides the cost-chosen rows-per-partition target
// of adaptive exchanges (AQE-style): the post-exchange partition count is
// derived from the observed upstream output size — ceil(rows/targetRows),
// clamped to the executor count — so tiny intermediate results collapse
// into fewer tasks. Adaptive exchanges are on by default with a target the
// cost model picks per exchange from the observed size and the executor
// count; this option pins one explicit target instead. targetRows <= 0
// keeps the static executor-count fan-out, exactly as it did before
// adaptivity became the default (WithoutAdaptiveExchange spells the same
// thing out).
func WithAdaptiveExchange(targetRows int) Option {
	return func(s *Session) {
		if targetRows > 0 {
			s.adaptiveRows = targetRows
			s.noAdaptive = false // last-wins over WithoutAdaptiveExchange
		} else {
			s.noAdaptive = true
		}
	}
}

// WithoutAdaptiveExchange disables adaptive post-exchange partitioning:
// every exchange then fans out to the static executor count, the pre-cost-
// model behaviour. Results are identical as sets; the switch exists for
// A/B ablation of the adaptivity, mirroring WithoutColumnarKernel.
func WithoutAdaptiveExchange() Option {
	return func(s *Session) { s.noAdaptive = true }
}

// WithWorkerPool pins the size of the session's work-stealing worker pool
// to n OS-thread-backed workers. The default (without this option) is
// min(runtime.NumCPU(), executors): the pool never oversubscribes the
// machine and never exceeds the configured parallelism budget. The pool
// is created lazily on the first non-simulated query and freed by Close.
func WithWorkerPool(n int) Option {
	return func(s *Session) {
		if n > 0 {
			s.poolSize = n
		}
	}
}

// WithoutMorselParallelism disables morsel-granular task splitting: stages
// then schedule whole partitions as tasks and the global skyline runs its
// serial kernel, the pre-morsel behaviour. Results are bit-identical
// either way (the parallel twins preserve emission order); the switch
// exists for A/B ablation and debugging, mirroring WithoutStageFusion.
func WithoutMorselParallelism() Option {
	return func(s *Session) { s.noMorsel = true }
}

// WithFaultInjection enables deterministic chaos testing: every task
// attempt of every query consults a seedable injector that may fail it
// with a transient error (retried under the task-retry budget), delay it
// like a straggler, or charge a transient allocation spike against the
// memory governor. Decisions are pure functions of (seed, stage, task,
// attempt), so a chaos run is bit-reproducible: same seed, same plan —
// same faults, same retry counters, same results.
func WithFaultInjection(cfg FaultInjection) Option {
	return func(s *Session) { s.injector = chaos.New(cfg) }
}

// WithTaskRetries bounds per-task re-execution after transient failures
// (default 3; 0 disables retry, failing the query on the first transient
// error exactly as before retries existed). Only errors classified
// transient (cluster.Transient / injected faults) are retried; query
// errors fail fast.
func WithTaskRetries(n int) Option {
	return func(s *Session) {
		if n >= 0 {
			s.taskRetries = n
		}
	}
}

// WithQueryTimeout bounds the wall-clock time of every Collect: past the
// deadline the run is cooperatively canceled (workers observe it between
// morsels) and the query fails with an error wrapping both ErrCanceled and
// context.DeadlineExceeded. 0 (the default) means no deadline. Per-call
// deadlines can instead be passed via DataFrame.CollectContext.
func WithQueryTimeout(d time.Duration) Option {
	return func(s *Session) {
		if d > 0 {
			s.queryTimeout = d
		}
	}
}

// WithMemoryBudget enforces a per-query cap on live materialized bytes
// (the quantity Metrics.PeakBytes observes). The engine degrades
// gracefully before failing: past 50% of the budget it spills exchange
// gather buffers to temporary segments (only when WithSpillDirectory is
// also set — the query then completes out-of-core with unchanged
// results), past 60% it drops columnar sidecars (boxed execution,
// bit-identical results), past 80% it collapses exchange fan-out to
// shrink concurrently-live buffers, and only an excess with every step
// already taken fails the query with ErrMemoryBudget. Degradation steps
// are recorded in Metrics. 0 (the default) disables enforcement.
func WithMemoryBudget(bytes int64) Option {
	return func(s *Session) {
		if bytes > 0 {
			s.memoryBudget = bytes
		}
	}
}

// WithSegmentStorage makes the session store registered tables as paged
// columnar segments instead of in-memory row slices: CreateTable,
// RegisterTable, and LoadCSV encode their rows into bounded segments
// (internal/storage) whose footers carry min/max/null-count zone maps and
// equi-width histograms. Scans then stream segments — skipping any
// segment the query's filter predicates provably reject, before a single
// page is decoded — and the planner's statistics come from the persisted
// footers instead of a re-scan pass. Results are bit-identical to
// in-memory tables across every strategy and ablation (the standing
// contract). dir is where segment files are written; "" keeps the
// encoded segments in memory, which exercises the identical code path
// without scratch space (useful in tests and benchmarks). Already
// segment-backed tables (OpenSegments) are unaffected.
func WithSegmentStorage(dir string) Option {
	return func(s *Session) {
		s.segStorage = true
		s.segDir = dir
	}
}

// WithSegmentRows overrides the rows-per-segment bound of segment-backed
// storage (default storage.DefaultSegmentRows = 65536). Smaller segments
// mean finer pruning granularity at more footer overhead; tests use small
// values to exercise multi-segment layouts on small data.
func WithSegmentRows(n int) Option {
	return func(s *Session) {
		if n > 0 {
			s.segRows = n
		}
	}
}

// WithSpillDirectory arms the memory governor's spill tier: under
// WithMemoryBudget pressure (past 50% of the budget), exchange gather
// buffers are written out as temporary segment files under dir and
// re-streamed, so a query whose working set exceeds its budget completes
// out-of-core — with bit-identical results — before any sidecar-drop or
// fan-out-collapse degradation fires. Spill segments are transient: each
// is deleted as soon as it is re-read. Without this option the governor
// keeps its pre-spill ladder exactly.
func WithSpillDirectory(dir string) Option {
	return func(s *Session) { s.spillDir = dir }
}

// WithoutSegmentPruning disables zone-map pruning at segment-backed
// scans: every segment decodes, filters do all the work. Results are
// bit-identical either way (pruning only skips segments the predicates
// provably reject); the switch exists for A/B ablation of the pruning
// win, mirroring WithoutStageFusion.
func WithoutSegmentPruning() Option {
	return func(s *Session) { s.noSegPrune = true }
}

// WithResultCache enables the session-scoped skyline result cache with
// the given byte budget (<= 0 selects resultcache.DefaultBudget, 64 MiB).
// Cacheable queries — skyline plans whose every operator the cache can
// fingerprint — are then answered from cache when the same normalized
// plan was executed before over the same table versions, bit-identically
// to a cold recompute. Entries store rows plus the columnar sidecar (a
// hit re-enters the data plane decode-free), are held under an LRU byte
// budget that sheds sidecars before whole entries, and are invalidated
// by any table-version bump — except in-memory appends to plans the
// cache can maintain incrementally, which upgrade entries in place via
// stream.Incremental (see Session.AppendRows). Hit/miss/eviction/upgrade
// counts surface in Explain, the skysql shell's \s, and skybench.
// The cache is off by default: WithoutResultCache spells that out.
func WithResultCache(bytes int64) Option {
	return func(s *Session) { s.cache = resultcache.New(bytes) }
}

// WithoutResultCache disables the skyline result cache — the default;
// the option exists so callers can spell the ablation out explicitly,
// mirroring WithoutStageFusion.
func WithoutResultCache() Option {
	return func(s *Session) { s.cache = nil }
}

// NewSession creates a session with an empty catalog.
func NewSession(opts ...Option) *Session {
	s := &Session{
		engine:      core.NewEngine(catalog.New()),
		executors:   4,
		strategy:    Auto,
		taskRetries: 3,
	}
	for _, o := range opts {
		o(s)
	}
	if s.maxConcurrent > 0 {
		s.admission = newAdmission(s.maxConcurrent, s.queueDepth)
	}
	if s.governed {
		s.governor = cluster.NewGovernor(s.globalBudget)
	}
	return s
}

// Executors returns the configured parallelism budget.
func (s *Session) Executors() int { return s.executors }

// workerPool lazily creates the session's work-stealing pool. The size is
// the pinned WithWorkerPool value, else min(runtime.NumCPU(), executors).
func (s *Session) workerPool() *cluster.WorkerPool {
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	if s.pool == nil {
		s.pool = cluster.NewWorkerPool(s.poolSizeLocked())
	}
	return s.pool
}

// poolSizeLocked resolves the pool size under poolMu: the pinned
// WithWorkerPool value, else min(runtime.NumCPU(), executors).
func (s *Session) poolSizeLocked() int {
	n := s.poolSize
	if n <= 0 {
		n = runtime.NumCPU()
		if s.executors < n {
			n = s.executors
		}
		if n < 1 {
			n = 1
		}
	}
	return n
}

// Close stops the session's worker pool. The session remains usable:
// the next query recreates the pool. Safe to call multiple times.
func (s *Session) Close() {
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	if s.pool != nil {
		s.pool.Close()
		s.pool = nil
	}
}

// SetExecutors changes the parallelism budget for subsequent queries.
func (s *Session) SetExecutors(n int) {
	if n > 0 {
		s.executors = n
	}
}

// CreateTable registers an in-memory table (segment-encoded when the
// session was built WithSegmentStorage).
func (s *Session) CreateTable(name string, schema *Schema, rows []Row) error {
	t, err := catalog.NewTable(name, schema, rows)
	if err != nil {
		return err
	}
	t, err = s.maybeSegment(t)
	if err != nil {
		return err
	}
	s.engine.Catalog.Register(t)
	return nil
}

// maybeSegment converts a row-backed table into a segment-backed one when
// the session stores tables as segments. The original schema pointer is
// kept (qualifiers, declared nullability); only the row storage moves.
func (s *Session) maybeSegment(t *catalog.Table) (*catalog.Table, error) {
	if !s.segStorage || t.Segments != nil {
		return t, nil
	}
	store, err := storage.FromRows(t.Rows, t.Schema, s.segDir, t.Name, s.segRows)
	if err != nil {
		return nil, err
	}
	return &catalog.Table{Name: t.Name, Schema: t.Schema, Segments: store}, nil
}

// MustCreateTable is CreateTable panicking on error; intended for examples
// and tests.
func (s *Session) MustCreateTable(name string, schema *Schema, rows []Row) {
	if err := s.CreateTable(name, schema, rows); err != nil {
		panic(err)
	}
}

// RegisterTable attaches an already-built table (e.g. from a generator or
// CSV loader) to the session catalog, segment-encoding it first when the
// session was built WithSegmentStorage. Conversion errors surface on the
// first query (the table is registered as-is then), so existing callers
// keep their error-free signature; use CreateTable for checked
// registration.
func (s *Session) RegisterTable(t *catalog.Table) {
	if conv, err := s.maybeSegment(t); err == nil {
		t = conv
	}
	s.engine.Catalog.Register(t)
}

// OpenSegments registers a table from an existing segment directory (as
// written by WithSegmentStorage or `datagen -segments`): footers only are
// read — row count, schema, and zone maps come from the segment tails —
// so opening a 10M-point dataset costs milliseconds, not a decode.
func (s *Session) OpenSegments(name, dir string) error {
	store, err := storage.OpenDir(dir)
	if err != nil {
		return err
	}
	s.engine.Catalog.Register(catalog.NewSegmentTable(name, store))
	return nil
}

// LoadCSV loads a CSV file as a table (segment-encoded when the session
// was built WithSegmentStorage); kinds gives the column types in header
// order.
func (s *Session) LoadCSV(name, path string, kinds []Kind) error {
	t, err := catalog.LoadCSVFile(name, path, kinds)
	if err != nil {
		return err
	}
	t, err = s.maybeSegment(t)
	if err != nil {
		return err
	}
	s.engine.Catalog.Register(t)
	return nil
}

// AppendRows appends rows to a registered in-memory table, bumping its
// version (so uncached plans re-sketch and stale cache entries stop
// matching) and, when the result cache is enabled, offering the change
// to the cache: entries over maintainable plan shapes absorb the new
// rows incrementally — dominance tests only against the cached skyline,
// via stream.Incremental — while all other dependent entries are
// invalidated. Segment-backed tables refuse appends (they are immutable
// at this layer).
// Safe for concurrent use: the append + cache-maintenance pair is
// serialized per session, so two concurrent appends cannot offer their
// batches to the cache in an order different from the one the table's
// rows received them in.
func (s *Session) AppendRows(name string, rows []Row) error {
	s.appendMu.Lock()
	defer s.appendMu.Unlock()
	t, err := s.engine.Catalog.Lookup(name)
	if err != nil {
		return err
	}
	if err := t.Append(rows...); err != nil {
		return err
	}
	if s.cache != nil {
		s.cache.TableChanged(t, rows)
	}
	return nil
}

// ResultCacheStats returns the cumulative counters and occupancy of the
// session's result cache; the zero Stats when caching is disabled.
func (s *Session) ResultCacheStats() resultcache.Stats {
	if s.cache == nil {
		return resultcache.Stats{}
	}
	return s.cache.Stats()
}

// DropTable removes a table from the catalog.
func (s *Session) DropTable(name string) { s.engine.Catalog.Drop(name) }

// Tables lists the registered table names.
func (s *Session) Tables() []string { return s.engine.Catalog.Names() }

// options assembles the physical planning options of this session.
func (s *Session) options() physical.Options {
	opts := physical.Options{
		Strategy:               s.strategy,
		SkylineWindowCap:       s.windowCap,
		DisableStageFusion:     s.noFusion,
		DisableColumnarKernel:  s.noKernel,
		DisableVectorizedExprs: s.noVector,
		SFSZorderPresort:       s.zorderSFS,
	}
	if s.cache != nil {
		// Guarded assignment: a typed-nil *Cache in the interface would
		// defeat the planner's nil check.
		opts.ResultCache = s.cache
	}
	return opts
}

// SQL compiles a query string into a lazy DataFrame.
func (s *Session) SQL(query string) (*DataFrame, error) {
	c, err := s.engine.CompileSQL(query, s.options())
	if err != nil {
		return nil, err
	}
	return &DataFrame{sess: s, compiled: c}, nil
}

// Query compiles and executes a query string, returning the rows.
func (s *Session) Query(query string) ([]Row, error) {
	df, err := s.SQL(query)
	if err != nil {
		return nil, err
	}
	return df.Collect()
}

// Explain compiles the query and renders the analyzed, optimized, and
// physical plans.
func (s *Session) Explain(query string) (string, error) {
	c, err := s.engine.CompileSQL(query, s.options())
	if err != nil {
		return "", err
	}
	return c.Explain(), nil
}

// RewriteSkyline produces the plain-SQL "reference" formulation of a
// skyline query (paper Listing 4) — useful for comparing the integrated
// operator with the rewriting the paper benchmarks against. incomplete
// selects the null-aware dominance conditions of §3.
func (s *Session) RewriteSkyline(query string, incomplete bool) (string, error) {
	return core.RewriteSkylineStatement(query, incomplete)
}

// run executes a compiled query with the session configuration.
func (s *Session) run(c *core.Compiled) (*core.Result, error) {
	return s.runCtx(context.Background(), c)
}

// runCtx executes a compiled query under a Go context: cancellation and
// deadlines (the caller's, plus WithQueryTimeout) map onto the cluster
// context's cooperative cancel, which workers observe between morsels.
// Under WithMaxConcurrentQueries the query first claims an admission
// slot (queueing or failing with ErrAdmission); under
// WithGlobalMemoryBudget its byte metering is attached to the shared
// governor pool for the duration of the run.
func (s *Session) runCtx(goCtx context.Context, c *core.Compiled) (*core.Result, error) {
	if s.admission != nil {
		// The queue wait is bounded by the caller's context only — the
		// WithQueryTimeout clock starts when execution does, so a queued
		// query gets its full time slice once admitted.
		if err := s.admission.acquire(goCtx); err != nil {
			return nil, err
		}
		defer s.admission.release()
	}
	ctx := cluster.NewContext(s.executors)
	if s.governor != nil {
		ctx.Global = s.governor
		ctx.Metrics.AttachGovernor(s.governor)
		defer ctx.Metrics.DetachGovernor()
	}
	ctx.Simulate = s.simulate
	ctx.AdaptiveExchange = !s.noAdaptive
	ctx.TargetRowsPerPartition = s.adaptiveRows
	if s.noAdaptive {
		ctx.TargetRowsPerPartition = 0
	}
	ctx.DecodeAtScan = !s.noVector && !s.noKernel
	ctx.MorselParallel = !s.noMorsel
	ctx.Injector = s.injector
	ctx.MaxTaskRetries = s.taskRetries
	ctx.MemoryBudget = s.memoryBudget
	ctx.SpillDir = s.spillDir
	ctx.DisableSegmentPrune = s.noSegPrune
	if !s.simulate && !s.noMorsel {
		// Simulated runs time tasks serially and model the parallelism with
		// the makespan greedy assignment; only real runs use the pool. A
		// single-worker pool cannot overlap morsels, so splitting would be
		// pure scheduling overhead — keep whole-partition tasks there.
		if pool := s.workerPool(); pool.Size() > 1 {
			ctx.Pool = pool
		} else {
			ctx.MorselParallel = false
		}
	}
	if s.queryTimeout > 0 {
		var cancel context.CancelFunc
		goCtx, cancel = context.WithTimeout(goCtx, s.queryTimeout)
		defer cancel()
	}
	if err := goCtx.Err(); err != nil {
		return nil, fmt.Errorf("skysql: %w: %w", cluster.ErrCanceled, err)
	}
	if goCtx.Done() != nil {
		// Watcher mapping ctx.Done() onto the cooperative cancel. The
		// recorded cause wraps both sentinels, so callers can match either
		// errors.Is(err, context.DeadlineExceeded) or ErrCanceled.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-goCtx.Done():
				ctx.CancelWith(fmt.Errorf("skysql: %w: %w", cluster.ErrCanceled, goCtx.Err()))
			case <-stop:
			}
		}()
	}
	res, err := s.engine.RunCtx(c, ctx)
	if err == nil {
		// Cancellation is cooperative: a round whose tasks were already
		// running when the deadline fired can still drain to completion.
		// Context semantics win over the wasted work — once the caller's
		// deadline passed, the query fails with the recorded cause rather
		// than returning rows the caller stopped waiting for.
		if cerr := ctx.CheckCanceled(); cerr != nil {
			return nil, cerr
		}
	}
	return res, err
}

// FormatRows renders rows as an aligned text table for display.
func FormatRows(schema *Schema, rows []Row) string {
	widths := make([]int, schema.Len())
	header := make([]string, schema.Len())
	for i, f := range schema.Fields {
		header[i] = f.Name
		widths[i] = len(f.Name)
	}
	cells := make([][]string, len(rows))
	for r, row := range rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			cells[r][i] = v.String()
			if len(cells[r][i]) > widths[i] {
				widths[i] = len(cells[r][i])
			}
		}
	}
	line := func(parts []string) string {
		out := ""
		for i, p := range parts {
			out += fmt.Sprintf("%-*s", widths[i], p)
			if i < len(parts)-1 {
				out += "  "
			}
		}
		return out + "\n"
	}
	out := line(header)
	for _, row := range cells {
		out += line(row)
	}
	return out
}
