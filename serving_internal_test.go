package skysql

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestAdmissionQueueBound drives the admission controller directly: with
// one execution slot and one queue slot, the first query is admitted, the
// second parks, the third is rejected immediately, and releasing the slot
// hands it to the parked waiter.
func TestAdmissionQueueBound(t *testing.T) {
	a := newAdmission(1, 1)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	parked := make(chan error, 1)
	go func() { parked <- a.acquire(context.Background()) }()
	// Wait until the second query is counted as a waiter so the third
	// arrival deterministically finds the queue full.
	deadline := time.Now().Add(5 * time.Second)
	for a.waiters.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second acquire never parked")
		}
		time.Sleep(time.Millisecond)
	}

	if err := a.acquire(context.Background()); !errors.Is(err, ErrAdmission) {
		t.Fatalf("third acquire with full queue: err=%v, want ErrAdmission", err)
	}

	a.release()
	if err := <-parked; err != nil {
		t.Fatalf("parked acquire after release: %v", err)
	}
	a.release()

	if got := a.admitted.Load(); got != 2 {
		t.Errorf("admitted = %d, want 2", got)
	}
	if got := a.queued.Load(); got != 1 {
		t.Errorf("queued = %d, want 1", got)
	}
	if got := a.rejected.Load(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	if got := a.inFlight.Load(); got != 0 {
		t.Errorf("inFlight after releases = %d, want 0", got)
	}
}

// TestAdmissionNoQueueRejects pins the queue-or-429 default: queueDepth 0
// rejects the moment the slots are saturated, without parking.
func TestAdmissionNoQueueRejects(t *testing.T) {
	a := newAdmission(1, 0)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	start := time.Now()
	err := a.acquire(context.Background())
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("saturated acquire: err=%v, want ErrAdmission", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("rejection took %v, want immediate", d)
	}
	a.release()
}

// TestAdmissionContextExpiredWhileQueued checks that a queued query whose
// context expires is rejected with ErrAdmission (and carries the context
// cause), and gives its queue slot back.
func TestAdmissionContextExpiredWhileQueued(t *testing.T) {
	a := newAdmission(1, 2)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	parked := make(chan error, 1)
	go func() { parked <- a.acquire(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for a.waiters.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued acquire never parked")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	err := <-parked
	if !errors.Is(err, ErrAdmission) || !errors.Is(err, context.Canceled) {
		t.Fatalf("expired-while-queued err = %v, want ErrAdmission wrapping context.Canceled", err)
	}
	if got := a.waiters.Load(); got != 0 {
		t.Errorf("waiters after expiry = %d, want 0 (queue slot must be returned)", got)
	}
	if got := a.rejected.Load(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	a.release()
}
