package skysql_test

import (
	"fmt"

	"skysql"
)

func exampleSession() *skysql.Session {
	sess := skysql.NewSession(skysql.WithExecutors(2))
	sess.MustCreateTable("hotels", skysql.NewSchema(
		skysql.Field{Name: "name", Type: skysql.KindString},
		skysql.Field{Name: "price", Type: skysql.KindInt},
		skysql.Field{Name: "rating", Type: skysql.KindInt},
	), []skysql.Row{
		{skysql.Str("Seaside"), skysql.Int(120), skysql.Int(8)},
		{skysql.Str("Palace"), skysql.Int(290), skysql.Int(9)},
		{skysql.Str("Budget"), skysql.Int(55), skysql.Int(6)},
		{skysql.Str("Downtown"), skysql.Int(130), skysql.Int(7)},
	})
	return sess
}

// The paper's headline feature: the SKYLINE OF clause in plain SQL.
func ExampleSession_Query() {
	sess := exampleSession()
	rows, err := sess.Query(
		"SELECT name FROM hotels SKYLINE OF price MIN, rating MAX ORDER BY name")
	if err != nil {
		panic(err)
	}
	for _, r := range rows {
		fmt.Println(r[0])
	}
	// Output:
	// Budget
	// Palace
	// Seaside
}

// The DataFrame API mirrors the paper's §5.8 smin()/smax() functions and
// bypasses the parser.
func ExampleDataFrame_Skyline() {
	sess := exampleSession()
	rows, err := sess.Table("hotels").
		Skyline([]skysql.SkylineDim{skysql.Smin("price"), skysql.Smax("rating")}).
		Select("name").
		OrderBy("name").
		Collect()
	if err != nil {
		panic(err)
	}
	for _, r := range rows {
		fmt.Println(r[0])
	}
	// Output:
	// Budget
	// Palace
	// Seaside
}

// RewriteSkyline generates the plain-SQL reference formulation the paper
// benchmarks against (Listing 4).
func ExampleSession_RewriteSkyline() {
	sess := exampleSession()
	ref, err := sess.RewriteSkyline(
		"SELECT name FROM hotels SKYLINE OF price MIN, rating MAX", false)
	if err != nil {
		panic(err)
	}
	fmt.Println(ref)
	// Output:
	// SELECT name FROM hotels AS o WHERE NOT EXISTS(SELECT * FROM hotels AS i WHERE i.price <= o.price AND i.rating >= o.rating AND (i.price < o.price OR i.rating > o.rating))
}

// Aggregates, HAVING and ORDER BY compose with the skyline clause; the
// analyzer resolves aggregate references the way the paper's Listings 6/7
// describe.
func ExampleSession_Query_aggregates() {
	sess := exampleSession()
	rows, err := sess.Query(`
		SELECT rating, count(*) AS n, min(price) AS cheapest
		FROM hotels GROUP BY rating
		SKYLINE OF min(price) MIN, rating MAX
		ORDER BY rating`)
	if err != nil {
		panic(err)
	}
	for _, r := range rows {
		fmt.Printf("rating=%s n=%s cheapest=%s\n", r[0], r[1], r[2])
	}
	// Output:
	// rating=6 n=1 cheapest=55
	// rating=8 n=1 cheapest=120
	// rating=9 n=1 cheapest=290
}
