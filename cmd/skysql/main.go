// Command skysql is a small SQL shell over the engine. It loads CSV files
// as tables and executes queries — including SKYLINE OF queries — either
// from the command line or interactively.
//
// Usage:
//
//	skysql -table hotels=hotels.csv:int,float,int -q "SELECT * FROM hotels SKYLINE OF price MIN, rating MAX"
//	skysql -table hotels=hotels.csv:int,float,int        # interactive shell
//
// The -table flag may be repeated. Column kinds are int, float, string,
// bool, given in CSV header order. Shell commands: \q quits, \t lists
// tables, \e <sql> explains a query, \s <sql> executes it and prints the
// per-stage makespan breakdown.
//
// Full manual: docs/skysql.md. For serving queries over HTTP instead of
// a shell, see cmd/skysqld (docs/skysqld.md).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"skysql"
)

type tableFlag []string

func (t *tableFlag) String() string     { return strings.Join(*t, ",") }
func (t *tableFlag) Set(v string) error { *t = append(*t, v); return nil }

func main() {
	var (
		tables     tableFlag
		query      = flag.String("q", "", "query to execute (omit for interactive shell)")
		executors  = flag.Int("executors", 4, "executor count")
		explain    = flag.Bool("explain", false, "print plans instead of executing")
		showStages = flag.Bool("stages", false, "print the per-stage makespan breakdown after each query")
		cacheBytes = flag.Int64("cache", 0, "skyline result-cache budget in bytes (0 = off, negative = default budget)")
	)
	flag.Var(&tables, "table", "name=file.csv:kind,kind,... (repeatable)")
	flag.Parse()

	opts := []skysql.Option{skysql.WithExecutors(*executors)}
	if *cacheBytes != 0 {
		opts = append(opts, skysql.WithResultCache(*cacheBytes))
	}
	sess := skysql.NewSession(opts...)
	for _, spec := range tables {
		if err := loadTable(sess, spec); err != nil {
			fmt.Fprintln(os.Stderr, "skysql:", err)
			os.Exit(1)
		}
	}

	if *query != "" {
		if err := execute(sess, *query, *explain, *showStages); err != nil {
			fmt.Fprintln(os.Stderr, "skysql:", err)
			os.Exit(1)
		}
		return
	}
	shell(sess, *showStages)
}

func loadTable(sess *skysql.Session, spec string) error {
	eq := strings.IndexByte(spec, '=')
	colon := strings.LastIndexByte(spec, ':')
	if eq < 0 || colon < eq {
		return fmt.Errorf("invalid -table %q; want name=file.csv:kind,...", spec)
	}
	name, path, kindList := spec[:eq], spec[eq+1:colon], spec[colon+1:]
	var kinds []skysql.Kind
	for _, k := range strings.Split(kindList, ",") {
		switch strings.TrimSpace(k) {
		case "int":
			kinds = append(kinds, skysql.KindInt)
		case "float":
			kinds = append(kinds, skysql.KindFloat)
		case "string":
			kinds = append(kinds, skysql.KindString)
		case "bool":
			kinds = append(kinds, skysql.KindBool)
		default:
			return fmt.Errorf("unknown column kind %q", k)
		}
	}
	return sess.LoadCSV(name, path, kinds)
}

// execute runs (or explains) one query; showStages additionally prints the
// per-stage makespan breakdown and decode counter of the run.
func execute(sess *skysql.Session, query string, explain, showStages bool) error {
	if explain {
		out, err := sess.Explain(query)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	df, err := sess.SQL(query)
	if err != nil {
		return err
	}
	start := time.Now()
	rows, err := df.Collect()
	if err != nil {
		return err
	}
	schema, err := df.Schema()
	if err != nil {
		return err
	}
	fmt.Print(skysql.FormatRows(schema, rows))
	fmt.Printf("(%d rows in %s)\n", len(rows), time.Since(start).Round(time.Millisecond))
	if showStages {
		if m := df.Metrics(); m != nil {
			if s := m.FormatStageTimes(); s != "" {
				fmt.Print("stage makespans:\n" + s)
			}
			fmt.Printf("batches decoded: %d\n", m.BatchesDecoded())
			fmt.Printf("vectorized batches: %d\n", m.VectorizedBatches())
			if ms := m.FormatMorsels(); ms != "" {
				fmt.Print(ms)
			}
			if ds := m.FormatCostDecisions(); ds != "" {
				fmt.Print("cost decisions:\n" + ds)
			}
			if rc := m.FormatResultCache(); rc != "" {
				fmt.Println(rc)
			}
			if fs := m.FormatFaults(); fs != "" {
				fmt.Print(fs)
			}
			if sg := m.FormatSegments(); sg != "" {
				fmt.Println(sg)
			}
		}
	}
	return nil
}

func shell(sess *skysql.Session, showStages bool) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("skysql shell — \\q to quit, \\t for tables, \\e <sql> to explain, \\s <sql> for stage times")
	for {
		fmt.Print("skysql> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\q`:
			return
		case line == `\t`:
			for _, t := range sess.Tables() {
				fmt.Println(t)
			}
		case strings.HasPrefix(line, `\e `):
			if err := execute(sess, strings.TrimPrefix(line, `\e `), true, showStages); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		case strings.HasPrefix(line, `\s `):
			if err := execute(sess, strings.TrimPrefix(line, `\s `), false, true); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		default:
			if err := execute(sess, line, false, showStages); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		}
	}
}
