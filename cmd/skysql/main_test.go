package main

import (
	"os"
	"path/filepath"
	"testing"

	"skysql"
)

func TestLoadTableSpecParsing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "h.csv")
	if err := os.WriteFile(path, []byte("id,price\n1,50\n2,60\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sess := skysql.NewSession()
	if err := loadTable(sess, "hotels="+path+":int,float"); err != nil {
		t.Fatalf("loadTable: %v", err)
	}
	rows, err := sess.Query("SELECT id FROM hotels WHERE price > 55")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].AsInt() != 2 {
		t.Errorf("rows = %v", rows)
	}
}

func TestLoadTableSpecErrors(t *testing.T) {
	sess := skysql.NewSession()
	bad := []string{
		"noequals",
		"name=file-without-colon",
		"name=f.csv:int,unknownkind",
		"name=/no/such/file.csv:int",
	}
	for _, spec := range bad {
		if err := loadTable(sess, spec); err == nil {
			t.Errorf("loadTable(%q) succeeded, want error", spec)
		}
	}
}

func TestExecuteAndExplain(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "h.csv")
	os.WriteFile(path, []byte("id,price,rating\n1,50,7\n2,60,9\n3,40,5\n"), 0o644)
	sess := skysql.NewSession()
	if err := loadTable(sess, "hotels="+path+":int,int,int"); err != nil {
		t.Fatal(err)
	}
	q := "SELECT * FROM hotels SKYLINE OF price MIN, rating MAX"
	if err := execute(sess, q, false, true); err != nil {
		t.Errorf("execute: %v", err)
	}
	if err := execute(sess, q, true, false); err != nil {
		t.Errorf("explain: %v", err)
	}
	if err := execute(sess, "garbage", false, false); err == nil {
		t.Error("bad query must error")
	}
}
