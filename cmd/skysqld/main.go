// Command skysqld is the skyline query server: a long-lived HTTP/JSON
// daemon over one shared skysql session. Every in-flight request shares
// the session's catalog, work-stealing worker pool, result cache,
// admission controller, and global memory governor.
//
// Usage:
//
//	skysqld -addr :8080 -table hotels=hotels.csv:int,float,int
//	skysqld -addr :8080 -synthetic 100000x4 -cache-mb 64 -max-concurrent 8 -queue-depth 16
//
// Endpoints: POST /query, POST /tables, POST /append, POST /drop,
// GET /stats, GET /healthz. The full HTTP API reference — request and
// response JSON schemas, error codes, the 429 admission semantics, and
// the /stats field glossary — lives in docs/skysqld.md.
//
// The serving policy maps one-to-one onto session options:
// -max-concurrent/-queue-depth onto WithMaxConcurrentQueries and
// WithAdmissionQueue (queries beyond both bounds are rejected with HTTP
// 429), -global-budget-mb onto WithGlobalMemoryBudget (concurrent
// queries degrade together — spill, drop sidecars, collapse fan-out —
// before any one of them fails), -budget-mb onto the per-query
// WithMemoryBudget ladder, and -cache-mb onto WithResultCache, shared
// across all clients.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"skysql"
	"skysql/internal/datagen"
	"skysql/internal/server"
)

type tableFlag []string

func (t *tableFlag) String() string     { return strings.Join(*t, ",") }
func (t *tableFlag) Set(v string) error { *t = append(*t, v); return nil }

func main() {
	var (
		tables         tableFlag
		addr           = flag.String("addr", ":8080", "listen address")
		executors      = flag.Int("executors", 4, "executor count (parallelism budget per query)")
		maxConcurrent  = flag.Int("max-concurrent", 0, "max queries executing at once (0 = unbounded)")
		queueDepth     = flag.Int("queue-depth", 0, "admission queue slots behind -max-concurrent (0 = reject immediately with 429)")
		globalBudgetMB = flag.Int64("global-budget-mb", 0, "global memory budget across all in-flight queries, MiB (0 = metering only)")
		budgetMB       = flag.Int64("budget-mb", 0, "per-query memory budget, MiB (0 = off)")
		cacheMB        = flag.Int64("cache-mb", 64, "skyline result-cache budget, MiB (0 = off)")
		spillDir       = flag.String("spill-dir", "", "directory for memory-governor spill segments (empty = spill tier off)")
		timeout        = flag.Duration("timeout", 0, "per-query wall-clock timeout (0 = none)")
		synthetic      = flag.String("synthetic", "", "register an anti-correlated synthetic table t, as ROWSxDIMS (e.g. 100000x4)")
		seed           = flag.Int64("seed", 1, "seed for -synthetic data")
	)
	flag.Var(&tables, "table", "name=file.csv:kind,kind,... (repeatable)")
	flag.Parse()

	opts := []skysql.Option{
		skysql.WithExecutors(*executors),
		// Always governed: a budget of 0 is metering-only, so /stats can
		// report live bytes and in-flight queries either way.
		skysql.WithGlobalMemoryBudget(*globalBudgetMB << 20),
	}
	if *maxConcurrent > 0 {
		opts = append(opts, skysql.WithMaxConcurrentQueries(*maxConcurrent),
			skysql.WithAdmissionQueue(*queueDepth))
	}
	if *budgetMB > 0 {
		opts = append(opts, skysql.WithMemoryBudget(*budgetMB<<20))
	}
	if *cacheMB > 0 {
		opts = append(opts, skysql.WithResultCache(*cacheMB<<20))
	}
	if *spillDir != "" {
		opts = append(opts, skysql.WithSpillDirectory(*spillDir))
	}
	if *timeout > 0 {
		opts = append(opts, skysql.WithQueryTimeout(*timeout))
	}
	sess := skysql.NewSession(opts...)
	defer sess.Close()

	for _, spec := range tables {
		if err := loadTable(sess, spec); err != nil {
			fmt.Fprintln(os.Stderr, "skysqld:", err)
			os.Exit(1)
		}
	}
	if *synthetic != "" {
		rows, dims, err := parseSynthetic(*synthetic)
		if err != nil {
			fmt.Fprintln(os.Stderr, "skysqld:", err)
			os.Exit(1)
		}
		sess.RegisterTable(datagen.Synthetic(datagen.AntiCorrelated, rows, dims,
			datagen.Config{Seed: *seed, Complete: true}))
		fmt.Printf("skysqld: registered synthetic table t (%d rows, %d dims, anti-correlated)\n", rows, dims)
	}

	srv := &http.Server{Addr: *addr, Handler: server.New(sess)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("skysqld: listening on %s (executors=%d, pool=%d)\n", *addr, sess.Executors(), sess.PoolSize())

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "skysqld:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		// Graceful drain: stop accepting, let in-flight queries finish
		// (bounded), then exit.
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "skysqld: shutdown:", err)
		}
		fmt.Println("skysqld: drained, exiting")
	}
}

// parseSynthetic parses ROWSxDIMS.
func parseSynthetic(s string) (rows, dims int, err error) {
	if _, err := fmt.Sscanf(strings.ToLower(s), "%dx%d", &rows, &dims); err != nil {
		return 0, 0, fmt.Errorf("invalid -synthetic %q; want ROWSxDIMS (e.g. 100000x4)", s)
	}
	if rows < 1 || dims < 2 {
		return 0, 0, fmt.Errorf("invalid -synthetic %q: need rows >= 1, dims >= 2", s)
	}
	return rows, dims, nil
}

// loadTable parses name=file.csv:kind,... and loads the CSV (same syntax
// as the skysql shell's -table flag).
func loadTable(sess *skysql.Session, spec string) error {
	eq := strings.IndexByte(spec, '=')
	colon := strings.LastIndexByte(spec, ':')
	if eq < 0 || colon < eq {
		return fmt.Errorf("invalid -table %q; want name=file.csv:kind,...", spec)
	}
	name, path, kindList := spec[:eq], spec[eq+1:colon], spec[colon+1:]
	var kinds []skysql.Kind
	for _, k := range strings.Split(kindList, ",") {
		switch strings.TrimSpace(k) {
		case "int":
			kinds = append(kinds, skysql.KindInt)
		case "float":
			kinds = append(kinds, skysql.KindFloat)
		case "string":
			kinds = append(kinds, skysql.KindString)
		case "bool":
			kinds = append(kinds, skysql.KindBool)
		default:
			return fmt.Errorf("unknown column kind %q", k)
		}
	}
	return sess.LoadCSV(name, path, kinds)
}
