// Command benchdiff turns the BENCH_*.json trajectory from a passive
// artifact into a regression gate: it compares a freshly generated
// skybench JSON report against a committed baseline on the deterministic
// counters — stages_executed, batches_decoded, vectorized_batches,
// rows_shuffled, peak_bytes — and exits non-zero when any record
// regressed. Wall-time fields are machine-dependent and stay
// informational (the total delta is printed, never gated on).
//
// Records are matched by their identifying fields (experiment, dataset,
// algorithm, dimensions, tuples, executors, and the ablation switches);
// records sharing an identity (e.g. one per filter cut) are compared in
// emission order, which skybench keeps deterministic. A record-set
// mismatch fails the gate too: it means the experiment changed shape and
// the baseline must be regenerated deliberately alongside the change.
//
// Usage:
//
//	benchdiff -baseline BENCH_PR4.json -fresh fresh.json [-tolerance 0.0]
//
// Full manual, including the gated-counter list and the record-identity
// rules: docs/benchdiff.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"skysql/internal/bench"
)

// counter describes one gated metric: how to read it and which direction
// is a regression.
type counter struct {
	name        string
	read        func(bench.Record) int64
	higherWorse bool
}

var counters = []counter{
	{"stages_executed", func(r bench.Record) int64 { return r.StagesExecuted }, true},
	{"batches_decoded", func(r bench.Record) int64 { return r.BatchesDecoded }, true},
	{"vectorized_batches", func(r bench.Record) int64 { return r.VectorizedBatches }, false},
	{"rows_shuffled", func(r bench.Record) int64 { return r.RowsShuffled }, true},
	{"peak_bytes", func(r bench.Record) int64 { return r.PeakBytes }, true},
	// morsels_executed is deterministic (it depends only on the partition
	// layout and the executor count); steals and achieved_parallelism are
	// timing-dependent and stay informational.
	{"morsels_executed", func(r bench.Record) int64 { return r.MorselsExecuted }, true},
	// The fault-tolerance counters are pure functions of (seed, plan) in
	// simulated mode: a drift means the task decomposition or the retry
	// semantics changed. tasks_failed is implicitly gated at zero — an
	// errored record already fails the gate.
	{"task_retries", func(r bench.Record) int64 { return r.TaskRetries }, true},
	{"injected_faults", func(r bench.Record) int64 { return r.InjectedFaults }, true},
	{"degradation_steps", func(r bench.Record) int64 { return r.DegradationSteps }, true},
	// Zone-map pruning decisions are pure functions of (footer, predicate):
	// fewer pruned segments means the scan decoded work it used to skip.
	// Spilled-segment counts depend only on the partition layout at the
	// budgeted gather, so more spills means the governor degraded earlier.
	{"segments_pruned", func(r bench.Record) int64 { return r.SegmentsPruned }, false},
	{"segments_spilled", func(r bench.Record) int64 { return r.SegmentsSpilled }, true},
	// Result-cache outcomes are pure functions of the seeded query
	// sequence: fewer hits (or more misses) means queries that used to be
	// served from the cache now recompute. Upgrade counts drifting down
	// means appends that used to maintain an entry in place now invalidate
	// it. cache_evictions is budget/size-dependent and stays informational.
	{"cache_hits", func(r bench.Record) int64 { return r.CacheHits }, false},
	{"cache_misses", func(r bench.Record) int64 { return r.CacheMisses }, true},
	{"incremental_upgrades", func(r bench.Record) int64 { return r.IncrementalUpgrades }, false},
	// Serve-experiment counters: the request count of a sweep cell is fixed
	// by its spec and the admission verdicts are deterministic per (spec,
	// seed) — the expectation is exact equality; latency percentiles and
	// achieved RPS are wall-clock and stay informational.
	{"requests_issued", func(r bench.Record) int64 { return r.RequestsIssued }, true},
	{"admission_rejected", func(r bench.Record) int64 { return r.AdmissionRejected }, true},
}

// identity is the matching key of a record: every field that names the
// measured configuration, none that measures.
func identity(r bench.Record) string {
	s := fmt.Sprintf("%s|%s|complete=%v|%s|dims=%d|tuples=%d|exec=%d|kernel=%v|vec=%v|target=%d|aqe=%v|gate=%v|morsel=%v",
		r.Experiment, r.Dataset, r.Complete, r.Algorithm, r.Dimensions, r.Tuples, r.Executors,
		r.ColumnarKernel, r.VectorizedExprs, r.AdaptiveTargetRows, r.AdaptiveExchange, r.CostGate, r.MorselParallel)
	// Chaos parameters join the identity only when set, so baselines
	// predating fault injection keep their keys unchanged.
	if r.FaultRate != 0 || r.RetryBudget != 0 {
		s += fmt.Sprintf("|fault=%g|retries=%d", r.FaultRate, r.RetryBudget)
	}
	// Load-generator parameters likewise join only when set: a 2-client
	// serve cell never compares against an 8-client one.
	if r.Clients != 0 || r.TargetRPS != 0 {
		s += fmt.Sprintf("|clients=%d|rps=%g", r.Clients, r.TargetRPS)
	}
	if r.Variant != "" {
		s += "|" + r.Variant
	}
	return s
}

func load(path string) (*bench.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed baseline report (required)")
		freshPath    = flag.String("fresh", "", "freshly generated report (required)")
		tolerance    = flag.Float64("tolerance", 0, "allowed fractional regression per counter (0 = exact)")
	)
	flag.Parse()
	if *baselinePath == "" || *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -fresh are required")
		flag.Usage()
		os.Exit(2)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if compare(baseline, fresh, *tolerance, os.Stdout) > 0 {
		os.Exit(1)
	}
}

// compare runs the gate and returns the number of regressions found.
func compare(baseline, fresh *bench.Report, tolerance float64, w io.Writer) int {
	// Group both record sets by identity, preserving emission order within
	// each group.
	group := func(rep *bench.Report) (map[string][]bench.Record, []string) {
		m := make(map[string][]bench.Record)
		var order []string
		for _, r := range rep.Records {
			k := identity(r)
			if _, seen := m[k]; !seen {
				order = append(order, k)
			}
			m[k] = append(m[k], r)
		}
		return m, order
	}
	base, baseOrder := group(baseline)
	cur, _ := group(fresh)

	regressions := 0
	improvements := 0
	var baseWall, freshWall float64
	fail := func(format string, args ...any) {
		fmt.Fprintf(w, "REGRESSION: "+format+"\n", args...)
		regressions++
	}

	for _, key := range baseOrder {
		bs := base[key]
		fs, ok := cur[key]
		if !ok {
			fail("%s: record missing from fresh report", key)
			continue
		}
		if len(bs) != len(fs) {
			fail("%s: record count changed (baseline %d, fresh %d) — regenerate the baseline", key, len(bs), len(fs))
			continue
		}
		for i := range bs {
			b, f := bs[i], fs[i]
			baseWall += b.WallSeconds
			freshWall += f.WallSeconds
			if b.Error != "" || f.Error != "" || b.TimedOut || f.TimedOut {
				fail("%s[%d]: errored or timed-out record (baseline err=%q t.o.=%v, fresh err=%q t.o.=%v)",
					key, i, b.Error, b.TimedOut, f.Error, f.TimedOut)
				continue
			}
			if b.ResultRows != f.ResultRows {
				fail("%s[%d]: result_rows %d -> %d (correctness drift)", key, i, b.ResultRows, f.ResultRows)
			}
			for _, c := range counters {
				bv, fv := c.read(b), c.read(f)
				if bv == fv {
					continue
				}
				worse := fv > bv == c.higherWorse
				if !worse {
					fmt.Fprintf(w, "improvement: %s[%d]: %s %d -> %d\n", key, i, c.name, bv, fv)
					improvements++
					continue
				}
				slack := tolerance * float64(bv)
				delta := float64(fv - bv)
				if !c.higherWorse {
					delta = float64(bv - fv)
				}
				if delta > slack {
					fail("%s[%d]: %s %d -> %d", key, i, c.name, bv, fv)
				}
			}
		}
	}
	for key := range cur {
		if _, ok := base[key]; !ok {
			fail("%s: record absent from baseline — regenerate the baseline", key)
		}
	}

	fmt.Fprintf(w, "benchdiff: %d record group(s), %d regression(s), %d improvement(s); wall %.3fs -> %.3fs (informational)\n",
		len(baseOrder), regressions, improvements, baseWall, freshWall)
	return regressions
}
