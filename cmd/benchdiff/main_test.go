package main

import (
	"strings"
	"testing"

	"skysql/internal/bench"
)

func rec(exp string, stages, decoded, vec, shuffled, peak int64, rows int) bench.Record {
	return bench.Record{
		Experiment: exp, Dataset: "d", Algorithm: "a", Dimensions: 2, Tuples: 100,
		Executors: 4, ColumnarKernel: true, VectorizedExprs: true,
		StagesExecuted: stages, BatchesDecoded: decoded, VectorizedBatches: vec,
		RowsShuffled: shuffled, PeakBytes: peak, ResultRows: rows, WallSeconds: 0.5,
	}
}

func report(recs ...bench.Record) *bench.Report {
	return &bench.Report{Scale: 1, Seed: 1, Records: recs}
}

func TestCompareIdenticalPasses(t *testing.T) {
	base := report(rec("e", 3, 4, 4, 100, 9000, 7), rec("e", 3, 4, 0, 100, 9000, 7))
	var sb strings.Builder
	if got := compare(base, report(base.Records...), 0, &sb); got != 0 {
		t.Fatalf("identical reports regressed: %d\n%s", got, sb.String())
	}
}

func TestCompareDirections(t *testing.T) {
	base := report(rec("e", 3, 4, 4, 100, 9000, 7))
	cases := []struct {
		name    string
		mutate  func(*bench.Record)
		regress bool
	}{
		{"more stages", func(r *bench.Record) { r.StagesExecuted++ }, true},
		{"fewer stages", func(r *bench.Record) { r.StagesExecuted-- }, false},
		{"more decodes", func(r *bench.Record) { r.BatchesDecoded++ }, true},
		{"fewer vectorized", func(r *bench.Record) { r.VectorizedBatches-- }, true},
		{"more vectorized", func(r *bench.Record) { r.VectorizedBatches++ }, false},
		{"more shuffled", func(r *bench.Record) { r.RowsShuffled += 5 }, true},
		{"more peak bytes", func(r *bench.Record) { r.PeakBytes += 5 }, true},
		{"result rows drift", func(r *bench.Record) { r.ResultRows++ }, true},
		{"wall time only", func(r *bench.Record) { r.WallSeconds *= 100 }, false},
	}
	for _, tc := range cases {
		fresh := report(base.Records[0])
		tc.mutate(&fresh.Records[0])
		var sb strings.Builder
		got := compare(base, fresh, 0, &sb)
		if (got > 0) != tc.regress {
			t.Errorf("%s: regressions = %d, want regression: %v\n%s", tc.name, got, tc.regress, sb.String())
		}
	}
}

func TestCompareTolerance(t *testing.T) {
	base := report(rec("e", 3, 4, 4, 100, 9000, 7))
	fresh := report(rec("e", 3, 4, 4, 105, 9000, 7))
	var sb strings.Builder
	if got := compare(base, fresh, 0.1, &sb); got != 0 {
		t.Errorf("5%% growth within 10%% tolerance must pass: %d\n%s", got, sb.String())
	}
	if got := compare(base, fresh, 0.01, &sb); got == 0 {
		t.Error("5% growth beyond 1% tolerance must fail")
	}
}

func TestCompareRecordSetDrift(t *testing.T) {
	base := report(rec("e", 3, 4, 4, 100, 9000, 7))
	var sb strings.Builder
	// Missing record.
	if got := compare(base, report(), 0, &sb); got == 0 {
		t.Error("missing fresh record must fail")
	}
	// Extra record (different identity).
	extra := rec("other", 3, 4, 4, 100, 9000, 7)
	if got := compare(base, report(base.Records[0], extra), 0, &sb); got == 0 {
		t.Error("record absent from baseline must fail")
	}
	// Same identity, different multiplicity.
	if got := compare(base, report(base.Records[0], base.Records[0]), 0, &sb); got == 0 {
		t.Error("record count drift must fail")
	}
	// Errored record.
	bad := base.Records[0]
	bad.Error = "boom"
	if got := compare(base, report(bad), 0, &sb); got == 0 {
		t.Error("errored record must fail")
	}
}

func TestCompareVariantSeparatesIdentities(t *testing.T) {
	// Two records differing only in Variant (e.g. filter cuts) must not be
	// zipped positionally: reordering them across reports is a shape
	// mismatch, not a counter regression.
	a := rec("e", 3, 4, 4, 100, 9000, 7)
	a.Variant = "d1<0.25"
	b := rec("e", 3, 4, 0, 200, 9000, 9)
	b.Variant = "d1<0.75"
	base := report(a, b)
	var sb strings.Builder
	if got := compare(base, report(b, a), 0, &sb); got != 0 {
		t.Errorf("variant reorder must match by identity, got %d regressions\n%s", got, sb.String())
	}
	// A changed cut value shows up as record-set drift, not counter noise.
	c := b
	c.Variant = "d1<0.9"
	sb.Reset()
	if got := compare(base, report(a, c), 0, &sb); got == 0 {
		t.Error("changed variant must fail as record-set drift")
	} else if !strings.Contains(sb.String(), "regenerate the baseline") {
		t.Errorf("want shape error, got:\n%s", sb.String())
	}
}
