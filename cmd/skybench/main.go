// Command skybench regenerates the paper's evaluation artifacts: every
// figure (3–19) and the Appendix D tables, plus an ablation over the §7
// extension algorithms. Each experiment prints the measured series in the
// paper's layout, with timed-out cells marked "t.o." and a relative-%-of-
// reference table.
//
// Usage:
//
//	skybench -list
//	skybench -experiment fig3
//	skybench -experiment all -scale 0.25 -timeout 60s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"skysql/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id (fig3..fig19, ablation, or all)")
		list       = flag.Bool("list", false, "list available experiments")
		verify     = flag.Bool("verify", false, "run the §5.9 correctness check (integrated vs reference) and exit")
		scale      = flag.Float64("scale", 1.0, "dataset size multiplier")
		timeout    = flag.Duration("timeout", 120*time.Second, "per-query timeout")
		seed       = flag.Int64("seed", 1, "dataset generator seed")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	cfg.Timeout = *timeout
	cfg.Seed = *seed

	if *verify {
		if err := bench.Verify(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "skybench:", err)
			os.Exit(1)
		}
		fmt.Println("all verification cases passed")
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "skybench: -experiment or -list required")
		flag.Usage()
		os.Exit(2)
	}

	run := func(e bench.Experiment) {
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "skybench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, e := range bench.Experiments() {
			run(e)
		}
		return
	}
	e, err := bench.ExperimentByID(*experiment)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skybench:", err)
		os.Exit(2)
	}
	run(e)
}
