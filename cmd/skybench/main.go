// Command skybench regenerates the paper's evaluation artifacts: every
// figure (3–19) and the Appendix D tables, plus an ablation over the §7
// extension algorithms. Each experiment prints the measured series in the
// paper's layout, with timed-out cells marked "t.o." and a relative-%-of-
// reference table.
//
// Usage:
//
//	skybench -list
//	skybench -experiment fig3
//	skybench -experiment all -scale 0.25 -timeout 60s
//
// Full manual, including the post-paper subsystem experiments and the
// BENCH_*.json trajectory they feed: docs/skybench.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"skysql/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id (fig3..fig19, ablation, or all)")
		list       = flag.Bool("list", false, "list available experiments")
		verify     = flag.Bool("verify", false, "run the §5.9 correctness check (integrated vs reference) and exit")
		scale      = flag.Float64("scale", 1.0, "dataset size multiplier")
		timeout    = flag.Duration("timeout", 120*time.Second, "per-query timeout")
		seed       = flag.Int64("seed", 1, "dataset generator seed")
		jsonOut    = flag.Bool("json", false, "emit machine-readable JSON records (experiment id, wall time, rows shuffled, peak bytes, stages executed) instead of tables")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	cfg.Timeout = *timeout
	cfg.Seed = *seed

	if *verify {
		if err := bench.Verify(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "skybench:", err)
			os.Exit(1)
		}
		fmt.Println("all verification cases passed")
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "skybench: -experiment or -list required")
		flag.Usage()
		os.Exit(2)
	}

	// In JSON mode the tables are discarded and every measurement is
	// collected through the Observer hook instead.
	records := []bench.Record{}
	currentID := ""
	tableOut := io.Writer(os.Stdout)
	if *jsonOut {
		tableOut = io.Discard
		cfg.Observer = func(m bench.Measurement) {
			records = append(records, bench.NewRecord(currentID, m))
		}
	}

	run := func(e bench.Experiment) {
		currentID = e.ID
		if !*jsonOut {
			fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		}
		start := time.Now()
		if err := e.Run(cfg, tableOut); err != nil {
			fmt.Fprintf(os.Stderr, "skybench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if !*jsonOut {
			fmt.Printf("(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}

	if *experiment == "all" {
		for _, e := range bench.Experiments() {
			run(e)
		}
	} else {
		e, err := bench.ExperimentByID(*experiment)
		if err != nil {
			fmt.Fprintln(os.Stderr, "skybench:", err)
			os.Exit(2)
		}
		run(e)
	}

	if *jsonOut {
		report := bench.Report{
			Scale:          cfg.Scale,
			Seed:           cfg.Seed,
			TimeoutSeconds: cfg.Timeout.Seconds(),
			Records:        records,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "skybench:", err)
			os.Exit(1)
		}
	}
}
