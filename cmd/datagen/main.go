// Command datagen writes the evaluation datasets to CSV — or, with
// -segments, streams them straight into paged columnar segment files
// (internal/storage) so datasets far larger than memory are generatable
// on CI-sized machines: with the synthetic generator only one segment's
// rows are ever resident.
//
// Usage:
//
//	datagen -dataset airbnb -rows 20000 -out airbnb.csv
//	datagen -dataset store_sales -rows 100000 -complete -out ss.csv
//	datagen -dataset musicbrainz -rows 8000 -out mb   # writes mb_*.csv
//	datagen -dataset synthetic -dist anti -rows 10000000 -segments -out segs/
//
// Full manual: docs/datagen.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"skysql/internal/catalog"
	"skysql/internal/datagen"
	"skysql/internal/storage"
	"skysql/internal/types"
)

func main() {
	var (
		dataset  = flag.String("dataset", "airbnb", "airbnb | store_sales | musicbrainz | synthetic")
		rows     = flag.Int("rows", 10000, "row count")
		seed     = flag.Int64("seed", 1, "generator seed")
		complete = flag.Bool("complete", false, "generate the complete (NULL-free) variant")
		dist     = flag.String("dist", "independent", "synthetic distribution: independent | correlated | anti")
		dims     = flag.Int("dims", 4, "synthetic dimension count")
		out      = flag.String("out", "", "output file (or prefix for musicbrainz; directory with -segments)")
		segments = flag.Bool("segments", false, "write columnar segment files into the -out directory instead of CSV")
		segRows  = flag.Int("segrows", 0, "rows per segment (default 65536)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out required")
		os.Exit(2)
	}
	cfg := datagen.Config{Rows: *rows, Seed: *seed, Complete: *complete}
	if *segments {
		writeSegments(*dataset, *dist, *dims, *segRows, *out, cfg)
		return
	}
	write := func(path string, t *catalog.Table) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := catalog.WriteCSV(f, t); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, len(t.Rows))
	}
	switch *dataset {
	case "airbnb":
		write(*out, datagen.Airbnb(cfg))
	case "store_sales":
		write(*out, datagen.StoreSales(cfg))
	case "musicbrainz":
		mb := datagen.NewMusicBrainz(cfg)
		write(*out+"_recordings.csv", mb.Recordings)
		write(*out+"_meta.csv", mb.Meta)
		write(*out+"_tracks.csv", mb.Tracks)
	case "synthetic":
		var d datagen.Distribution
		switch *dist {
		case "independent":
			d = datagen.Independent
		case "correlated":
			d = datagen.Correlated
		case "anti":
			d = datagen.AntiCorrelated
		default:
			fmt.Fprintln(os.Stderr, "datagen: unknown -dist", *dist)
			os.Exit(2)
		}
		write(*out, datagen.Synthetic(d, *rows, *dims, cfg))
	default:
		fmt.Fprintln(os.Stderr, "datagen: unknown -dataset", *dataset)
		os.Exit(2)
	}
}

// writeSegments streams the dataset into segment files under dir. The
// synthetic generator streams row by row — only one segment's rows are
// buffered at a time, so 10M-point datasets generate in constant memory;
// the fixed datasets (which materialize anyway) encode via the same
// writer.
func writeSegments(dataset, dist string, dims, segRows int, dir string, cfg datagen.Config) {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail(err)
	}
	write := func(name string, schema *types.Schema, stream func(yield func(types.Row) error) error) {
		w := storage.NewWriter(schema, dir, name, segRows)
		if err := stream(w.Append); err != nil {
			fail(err)
		}
		store, err := w.Close()
		if err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s under %s (%d rows, %d segments)\n",
			name, dir, store.Rows(), len(store.Segments()))
	}
	writeTable := func(name string, t *catalog.Table) {
		write(name, t.Schema, func(yield func(types.Row) error) error {
			for _, r := range t.Rows {
				if err := yield(r); err != nil {
					return err
				}
			}
			return nil
		})
	}
	switch dataset {
	case "airbnb":
		writeTable("airbnb", datagen.Airbnb(cfg))
	case "store_sales":
		writeTable("store_sales", datagen.StoreSales(cfg))
	case "synthetic":
		var d datagen.Distribution
		switch dist {
		case "independent":
			d = datagen.Independent
		case "correlated":
			d = datagen.Correlated
		case "anti":
			d = datagen.AntiCorrelated
		default:
			fmt.Fprintln(os.Stderr, "datagen: unknown -dist", dist)
			os.Exit(2)
		}
		write("t", datagen.SyntheticSchema(dims, cfg), func(yield func(types.Row) error) error {
			return datagen.SyntheticStream(d, cfg.Rows, dims, cfg, yield)
		})
	default:
		fmt.Fprintln(os.Stderr, "datagen: -segments supports airbnb, store_sales, synthetic; got", dataset)
		os.Exit(2)
	}
}
