// Command datagen writes the evaluation datasets to CSV so they can be
// inspected or loaded into other systems.
//
// Usage:
//
//	datagen -dataset airbnb -rows 20000 -out airbnb.csv
//	datagen -dataset store_sales -rows 100000 -complete -out ss.csv
//	datagen -dataset musicbrainz -rows 8000 -out mb   # writes mb_*.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"skysql/internal/catalog"
	"skysql/internal/datagen"
)

func main() {
	var (
		dataset  = flag.String("dataset", "airbnb", "airbnb | store_sales | musicbrainz | synthetic")
		rows     = flag.Int("rows", 10000, "row count")
		seed     = flag.Int64("seed", 1, "generator seed")
		complete = flag.Bool("complete", false, "generate the complete (NULL-free) variant")
		dist     = flag.String("dist", "independent", "synthetic distribution: independent | correlated | anti")
		dims     = flag.Int("dims", 4, "synthetic dimension count")
		out      = flag.String("out", "", "output file (or prefix for musicbrainz)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out required")
		os.Exit(2)
	}
	cfg := datagen.Config{Rows: *rows, Seed: *seed, Complete: *complete}
	write := func(path string, t *catalog.Table) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := catalog.WriteCSV(f, t); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, len(t.Rows))
	}
	switch *dataset {
	case "airbnb":
		write(*out, datagen.Airbnb(cfg))
	case "store_sales":
		write(*out, datagen.StoreSales(cfg))
	case "musicbrainz":
		mb := datagen.NewMusicBrainz(cfg)
		write(*out+"_recordings.csv", mb.Recordings)
		write(*out+"_meta.csv", mb.Meta)
		write(*out+"_tracks.csv", mb.Tracks)
	case "synthetic":
		var d datagen.Distribution
		switch *dist {
		case "independent":
			d = datagen.Independent
		case "correlated":
			d = datagen.Correlated
		case "anti":
			d = datagen.AntiCorrelated
		default:
			fmt.Fprintln(os.Stderr, "datagen: unknown -dist", *dist)
			os.Exit(2)
		}
		write(*out, datagen.Synthetic(d, *rows, *dims, cfg))
	default:
		fmt.Fprintln(os.Stderr, "datagen: unknown -dataset", *dataset)
		os.Exit(2)
	}
}
