// Store sales: the paper's synthetic DSB workload (§6.2, Table 2), used
// here to compare all four evaluation algorithms (§6.3) on the same query
// — the core experiment behind Figures 4, 5 and 7 — and to demonstrate
// the DataFrame API with Smin/Smax dimension markers (§5.8).
package main

import (
	"fmt"
	"log"
	"time"

	"skysql"
	"skysql/internal/datagen"
)

func main() {
	const rows = 40000
	sess := skysql.NewSession(skysql.WithExecutors(8))
	sess.RegisterTable(datagen.StoreSales(datagen.Config{Rows: rows, Seed: 7, Complete: true}))

	fmt.Printf("store_sales, %d rows, 6 skyline dimensions, 8 executors\n\n", rows)

	query := `SELECT * FROM store_sales SKYLINE OF
		ss_quantity MAX, ss_wholesale_cost MIN, ss_list_price MIN,
		ss_sales_price MIN, ss_ext_discount_amt MAX, ss_ext_sales_price MIN`

	// 1) The paper's four algorithms on the same query.
	algos := []struct {
		name     string
		strategy skysql.SkylineStrategy
	}{
		{"distributed complete", skysql.DistributedComplete},
		{"non-distributed complete", skysql.NonDistributedComplete},
		{"distributed incomplete", skysql.DistributedIncomplete},
	}
	for _, a := range algos {
		s := skysql.NewSession(skysql.WithExecutors(8), skysql.WithSkylineStrategy(a.strategy))
		s.RegisterTable(datagen.StoreSales(datagen.Config{Rows: rows, Seed: 7, Complete: true}))
		start := time.Now()
		res, err := s.Query(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %6d rows  %8s\n", a.name, len(res), time.Since(start).Round(time.Millisecond))
	}

	// The reference algorithm: the same query rewritten to plain SQL
	// (Listing 4) — no SKYLINE syntax, a correlated NOT EXISTS instead.
	ref, err := sess.RewriteSkyline(query, false)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := sess.Query(ref)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-26s %6d rows  %8s\n\n", "reference (plain SQL)", len(res), time.Since(start).Round(time.Millisecond))

	// 2) The same skyline via the DataFrame API — no SQL string involved;
	// the plan enters the engine after the parser, as in the paper's §5.8.
	df := sess.Table("store_sales").
		Where("ss_quantity >= 10").
		Skyline([]skysql.SkylineDim{
			skysql.Smax("ss_quantity"),
			skysql.Smin("ss_wholesale_cost"),
			skysql.Smin("ss_list_price"),
		}, skysql.SkylineComplete()).
		Select("ss_item_sk", "ss_quantity", "ss_wholesale_cost", "ss_list_price").
		OrderBy("ss_wholesale_cost").
		Limit(10)
	top, err := df.Collect()
	if err != nil {
		log.Fatal(err)
	}
	schema, _ := df.Schema()
	fmt.Println("Top bulk bargains (DataFrame API):")
	fmt.Print(skysql.FormatRows(schema, top))
}
