// Streaming: incremental skyline maintenance over an unbounded feed — the
// groundwork for the paper's §7 "integration into structured streaming"
// future work. Sensor readings arrive one at a time; the current Pareto
// front (low latency, high throughput) is available after every event,
// with admission/eviction notifications.
package main

import (
	"fmt"
	"math/rand"

	"skysql/internal/skyline"
	"skysql/internal/stream"
	"skysql/internal/types"
)

func main() {
	// Maintain the skyline of (latency MIN, throughput MAX).
	inc := stream.NewIncremental([]skyline.Dir{skyline.Min, skyline.Max}, false)
	rng := rand.New(rand.NewSource(7))

	fmt.Println("streaming servers: latency [ms] MIN, throughput [req/s] MAX")
	admitted, evictions := 0, 0
	for event := 1; event <= 10000; event++ {
		latency := 5 + rng.ExpFloat64()*40
		throughput := 100 + rng.Float64()*900
		dims := types.Row{types.Float(latency), types.Float(throughput)}
		row := types.Row{types.Int(int64(event)), dims[0], dims[1]}
		ev, err := inc.Add(dims, row)
		if err != nil {
			panic(err)
		}
		if ev.Admitted {
			admitted++
			evictions += len(ev.Evicted)
		}
		if event%2000 == 0 {
			fmt.Printf("after %5d events: skyline size %2d (admitted %d, evicted %d, %d dominance tests)\n",
				event, inc.Size(), admitted, evictions, inc.Stats().DominanceTests())
		}
	}

	fmt.Println("\ncurrent Pareto-optimal servers:")
	for _, p := range inc.Skyline() {
		fmt.Printf("  server %4s  latency %7.2f ms  throughput %7.1f req/s\n",
			p.Row[0], p.Row[1].AsFloat(), p.Row[2].AsFloat())
	}
}
