// MusicBrainz: the paper's complex-query experiment (Appendix E). The
// skyline sits on top of a derived table with an outer join and
// aggregates; the example contrasts the concise SKYLINE OF formulation
// (Listing 14) with the sprawling plain-SQL rewriting (Listing 13) and
// verifies both return the same recordings.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"skysql"
	"skysql/internal/datagen"
)

func main() {
	sess := skysql.NewSession(skysql.WithExecutors(4))
	mb := datagen.NewMusicBrainz(datagen.Config{Rows: 6000, Seed: 3, Complete: true})
	sess.RegisterTable(mb.Recordings)
	sess.RegisterTable(mb.Meta)
	sess.RegisterTable(mb.Tracks)

	base := mb.BaseQuery()

	// Listing 14: base query + skyline clause. "Find the best and most
	// often rated recordings which are the shortest, have a video, appear
	// on many tracks, and near the start of their album."
	skyline := "SELECT * FROM (" + base + `) SKYLINE OF COMPLETE
		rating MAX, rating_count MAX, length MIN,
		video MAX, num_tracks MAX, min_position MIN`

	start := time.Now()
	intRows, err := sess.Query(skyline)
	if err != nil {
		log.Fatal(err)
	}
	intTime := time.Since(start)

	// Listing 13: the same query rewritten into plain SQL by hand (here:
	// generated). Note how much longer it gets.
	ref, err := sess.RewriteSkyline(skyline, false)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	refRows, err := sess.Query(ref)
	if err != nil {
		log.Fatal(err)
	}
	refTime := time.Since(start)

	fmt.Printf("integrated SKYLINE OF: %4d recordings in %8s (query: %4d chars)\n",
		len(intRows), intTime.Round(time.Millisecond), len(skyline))
	fmt.Printf("plain-SQL reference:   %4d recordings in %8s (query: %4d chars)\n",
		len(refRows), refTime.Round(time.Millisecond), len(ref))

	if !sameRowSet(intRows, refRows) {
		log.Fatal("BUG: integrated and reference results differ")
	}
	fmt.Println("both formulations return the same skyline ✓")

	fmt.Println("\nfirst skyline recordings (id, length, video, rating, rating_count, num_tracks, min_position):")
	sort.Slice(intRows, func(i, j int) bool { return intRows[i][0].AsInt() < intRows[j][0].AsInt() })
	for i, r := range intRows {
		if i == 5 {
			fmt.Printf("... and %d more\n", len(intRows)-5)
			break
		}
		fmt.Println(" ", r)
	}
}

func sameRowSet(a, b []skysql.Row) bool {
	if len(a) != len(b) {
		return false
	}
	as := make([]string, len(a))
	bs := make([]string, len(b))
	for i := range a {
		as[i], bs[i] = a[i].String(), b[i].String()
	}
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
