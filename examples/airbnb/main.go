// Airbnb: the paper's real-world workload (§6.2, Table 1). Generates an
// Inside-Airbnb-shaped dataset — including listings with missing values —
// and shows how algorithm selection reacts: the nullable columns trigger
// the incomplete algorithm, while the COMPLETE keyword (or a pre-filtered
// dataset) enables the faster complete algorithms.
package main

import (
	"fmt"
	"log"
	"time"

	"skysql"
	"skysql/internal/datagen"
)

func main() {
	sess := skysql.NewSession(skysql.WithExecutors(5))

	// Incomplete variant: some listings lack bedrooms/review scores.
	sess.RegisterTable(datagen.Airbnb(datagen.Config{Rows: 30000, Seed: 42}))
	// Complete variant: rows with NULL skyline dimensions removed upstream.
	complete := datagen.Airbnb(datagen.Config{Rows: 20000, Seed: 42, Complete: true})
	completeNamed, err := skysql.NewTable("airbnb_complete", complete.Schema, complete.Rows)
	if err != nil {
		log.Fatal(err)
	}
	sess.RegisterTable(completeNamed)

	run := func(label, query string) {
		df, err := sess.SQL(query)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		rows, err := df.Collect()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %5d skyline listings  %8s  %10d dominance tests\n",
			label, len(rows), time.Since(start).Round(time.Millisecond), df.Metrics().Sky.DominanceTests())
	}

	fmt.Println("Finding the best Airbnb listings (cheap, big, well-reviewed):")
	dims := "price MIN, accommodates MAX, bedrooms MAX, beds MAX, number_of_reviews MAX, review_scores_rating MAX"

	// Nullable input → the engine selects the incomplete algorithm.
	run("incomplete data (auto)", "SELECT * FROM airbnb SKYLINE OF "+dims)

	// Complete table → the engine selects the distributed complete
	// algorithm automatically.
	run("complete data (auto)", "SELECT * FROM airbnb_complete SKYLINE OF "+dims)

	// The COMPLETE keyword forces the complete algorithm even when the
	// schema says columns are nullable — the user's promise (§5.5).
	run("incomplete schema + COMPLETE",
		"SELECT * FROM airbnb_complete SKYLINE OF COMPLETE "+dims)

	// A two-dimensional skyline for comparison: fewer dimensions, smaller
	// skyline, fewer dominance tests (paper Figure 3).
	run("2 dimensions only", "SELECT * FROM airbnb_complete SKYLINE OF price MIN, accommodates MAX")

	// Show the plans differ.
	for _, q := range []string{
		"SELECT * FROM airbnb SKYLINE OF " + dims,
		"SELECT * FROM airbnb_complete SKYLINE OF " + dims,
	} {
		plan, err := sess.Explain(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nplan for:", q[:50], "...")
		fmt.Print(plan)
	}
}
