// Quickstart: create a table, run the paper's hotel skyline query
// (Listing 2) via SQL, and inspect the plan and metrics.
package main

import (
	"fmt"
	"log"

	"skysql"
)

func main() {
	sess := skysql.NewSession(skysql.WithExecutors(4))

	schema := skysql.NewSchema(
		skysql.Field{Name: "name", Type: skysql.KindString},
		skysql.Field{Name: "price", Type: skysql.KindFloat},
		skysql.Field{Name: "user_rating", Type: skysql.KindFloat},
	)
	rows := []skysql.Row{
		{skysql.Str("Seaside Inn"), skysql.Float(120), skysql.Float(8.1)},
		{skysql.Str("Grand Palace"), skysql.Float(290), skysql.Float(9.4)},
		{skysql.Str("Budget Stay"), skysql.Float(55), skysql.Float(6.0)},
		{skysql.Str("Harbor View"), skysql.Float(140), skysql.Float(8.9)},
		{skysql.Str("Old Mill"), skysql.Float(75), skysql.Float(7.2)},
		{skysql.Str("City Center"), skysql.Float(130), skysql.Float(7.9)}, // dominated by Harbor View
		{skysql.Str("Overpriced"), skysql.Float(300), skysql.Float(9.0)},  // dominated by Grand Palace
	}
	sess.MustCreateTable("hotels", schema, rows)

	// The paper's Listing 2: a skyline query in extended SQL.
	query := "SELECT name, price, user_rating FROM hotels SKYLINE OF price MIN, user_rating MAX"
	df, err := sess.SQL(query)
	if err != nil {
		log.Fatal(err)
	}
	result, err := df.Collect()
	if err != nil {
		log.Fatal(err)
	}
	outSchema, _ := df.Schema()

	fmt.Println("Pareto-optimal hotels (cheap AND well-rated):")
	fmt.Print(skysql.FormatRows(outSchema, result))

	plan, _ := df.Explain()
	fmt.Println("\nHow the engine ran it:")
	fmt.Print(plan)

	fmt.Printf("\ndominance tests: %d, rows shuffled: %d, wall clock: %s\n",
		df.Metrics().Sky.DominanceTests(), df.Metrics().RowsShuffled(), df.Duration())
}
