package skysql

import (
	"context"
	"fmt"
	"time"

	"skysql/internal/core"
	"skysql/internal/expr"
	"skysql/internal/plan"
	"skysql/internal/sql"
)

// DataFrame is a lazily evaluated query. It is produced either from a SQL
// string (Session.SQL) or built fluently from Session.Table; nothing
// executes until Collect (or Count) is called. DataFrame-built plans skip
// the parser and feed the logical plan directly to the analyzer, exactly
// as the paper's DataFrame API does (§5.8).
type DataFrame struct {
	sess     *Session
	logical  plan.Node      // plan under construction (builder path)
	compiled *core.Compiled // compiled form (SQL path, or after compile())
	err      error          // first deferred builder error

	metrics  *Metrics
	duration time.Duration
}

// Table starts a DataFrame over a catalog table.
func (s *Session) Table(name string) *DataFrame {
	return &DataFrame{sess: s, logical: &plan.UnresolvedRelation{Name: name}}
}

// fail returns a DataFrame frozen on err.
func (df *DataFrame) fail(err error) *DataFrame {
	return &DataFrame{sess: df.sess, err: err}
}

// with returns a DataFrame with a new plan root.
func (df *DataFrame) with(n plan.Node) *DataFrame {
	return &DataFrame{sess: df.sess, logical: n}
}

func (df *DataFrame) builderReady() error {
	if df.err != nil {
		return df.err
	}
	if df.logical == nil {
		return fmt.Errorf("skysql: DataFrame built from SQL cannot be extended; use SQL composition instead")
	}
	return nil
}

// Select projects the given expressions (column names or SQL fragments,
// e.g. "price", "ifnull(length, 0) AS len").
func (df *DataFrame) Select(items ...string) *DataFrame {
	if err := df.builderReady(); err != nil {
		return df.fail(err)
	}
	exprs := make([]expr.Expr, len(items))
	for i, it := range items {
		e, err := parseSelectItem(it)
		if err != nil {
			return df.fail(err)
		}
		exprs[i] = e
	}
	return df.with(plan.NewProject(exprs, df.logical))
}

// parseSelectItem parses an item, accepting "expr AS alias".
func parseSelectItem(src string) (expr.Expr, error) {
	stmt, err := sql.Parse("SELECT " + src)
	if err != nil {
		return nil, err
	}
	if len(stmt.Items) != 1 {
		return nil, fmt.Errorf("skysql: expected a single projection item in %q", src)
	}
	return stmt.Items[0], nil
}

// Filter keeps rows satisfying the SQL predicate fragment.
func (df *DataFrame) Filter(cond string) *DataFrame {
	if err := df.builderReady(); err != nil {
		return df.fail(err)
	}
	e, err := sql.ParseExpr(cond)
	if err != nil {
		return df.fail(err)
	}
	return df.with(plan.NewFilter(e, df.logical))
}

// Where is an alias for Filter.
func (df *DataFrame) Where(cond string) *DataFrame { return df.Filter(cond) }

// SkylineDim is one skyline dimension for the DataFrame API, created with
// Smin, Smax, or Sdiff — the engine-side equivalents of the paper's
// smin()/smax()/sdiff() column functions (§5.8).
type SkylineDim struct {
	src string
	dir expr.SkylineDir
}

// Smin marks a minimized skyline dimension.
func Smin(col string) SkylineDim { return SkylineDim{src: col, dir: expr.SkyMin} }

// Smax marks a maximized skyline dimension.
func Smax(col string) SkylineDim { return SkylineDim{src: col, dir: expr.SkyMax} }

// Sdiff marks a DIFF skyline dimension (grouping: only tuples with equal
// values compete).
func Sdiff(col string) SkylineDim { return SkylineDim{src: col, dir: expr.SkyDiff} }

// SkylineOpt configures the skyline operator.
type SkylineOpt func(*skylineCfg)

type skylineCfg struct {
	distinct bool
	complete bool
}

// SkylineDistinct keeps a single tuple per distinct dimension vector.
func SkylineDistinct() SkylineOpt { return func(c *skylineCfg) { c.distinct = true } }

// SkylineComplete asserts the input has no NULLs in the skyline
// dimensions, forcing the faster complete algorithms (the DataFrame form
// of the paper's COMPLETE keyword).
func SkylineComplete() SkylineOpt { return func(c *skylineCfg) { c.complete = true } }

// Skyline appends the skyline operator with the given dimensions.
func (df *DataFrame) Skyline(dims []SkylineDim, opts ...SkylineOpt) *DataFrame {
	if err := df.builderReady(); err != nil {
		return df.fail(err)
	}
	if len(dims) == 0 {
		return df.fail(fmt.Errorf("skysql: Skyline requires at least one dimension"))
	}
	var cfg skylineCfg
	for _, o := range opts {
		o(&cfg)
	}
	sdims := make([]*expr.SkylineDimension, len(dims))
	for i, d := range dims {
		e, err := sql.ParseExpr(d.src)
		if err != nil {
			return df.fail(err)
		}
		sdims[i] = expr.NewSkylineDimension(e, d.dir)
	}
	return df.with(plan.NewSkylineOperator(cfg.distinct, cfg.complete, sdims, df.logical))
}

// GroupedData is a DataFrame with pending grouping.
type GroupedData struct {
	df     *DataFrame
	groups []expr.Expr
	err    error
}

// GroupBy starts an aggregation over the given grouping expressions.
func (df *DataFrame) GroupBy(cols ...string) *GroupedData {
	if err := df.builderReady(); err != nil {
		return &GroupedData{err: err, df: df}
	}
	groups := make([]expr.Expr, len(cols))
	for i, c := range cols {
		e, err := sql.ParseExpr(c)
		if err != nil {
			return &GroupedData{err: err, df: df}
		}
		groups[i] = e
	}
	return &GroupedData{df: df, groups: groups}
}

// Agg finishes the aggregation; items are output expressions such as
// "user_rating", "count(*) AS n", "min(price) AS cheapest".
func (g *GroupedData) Agg(items ...string) *DataFrame {
	if g.err != nil {
		return g.df.fail(g.err)
	}
	outputs := make([]expr.Expr, len(items))
	for i, it := range items {
		e, err := parseSelectItem(it)
		if err != nil {
			return g.df.fail(err)
		}
		outputs[i] = e
	}
	return g.df.with(plan.NewAggregate(g.groups, outputs, g.df.logical))
}

// Join joins with another builder DataFrame. how is one of "inner",
// "left", "right", "cross"; on is a SQL predicate fragment (empty for
// cross joins).
func (df *DataFrame) Join(other *DataFrame, how, on string) *DataFrame {
	if err := df.builderReady(); err != nil {
		return df.fail(err)
	}
	if err := other.builderReady(); err != nil {
		return df.fail(err)
	}
	var jt plan.JoinType
	switch how {
	case "inner":
		jt = plan.InnerJoin
	case "left":
		jt = plan.LeftOuterJoin
	case "right":
		jt = plan.RightOuterJoin
	case "cross":
		jt = plan.CrossJoin
	default:
		return df.fail(fmt.Errorf("skysql: unknown join type %q", how))
	}
	var cond expr.Expr
	if on != "" {
		e, err := sql.ParseExpr(on)
		if err != nil {
			return df.fail(err)
		}
		cond = e
	} else if jt != plan.CrossJoin {
		return df.fail(fmt.Errorf("skysql: %s join requires an ON predicate", how))
	}
	return df.with(plan.NewJoin(jt, df.logical, other.logical, cond))
}

// Alias names the DataFrame as a derived table so its columns can be
// referenced with a qualifier after joins.
func (df *DataFrame) Alias(name string) *DataFrame {
	if err := df.builderReady(); err != nil {
		return df.fail(err)
	}
	return df.with(plan.NewSubqueryAlias(name, df.logical))
}

// OrderBy appends a sort key (ascending).
func (df *DataFrame) OrderBy(col string) *DataFrame { return df.orderBy(col, false) }

// OrderByDesc appends a descending sort key.
func (df *DataFrame) OrderByDesc(col string) *DataFrame { return df.orderBy(col, true) }

func (df *DataFrame) orderBy(col string, desc bool) *DataFrame {
	if err := df.builderReady(); err != nil {
		return df.fail(err)
	}
	e, err := sql.ParseExpr(col)
	if err != nil {
		return df.fail(err)
	}
	order := plan.SortOrder{E: e, Desc: desc}
	// Merge into an existing Sort so chained OrderBy calls build one node.
	if s, ok := df.logical.(*plan.Sort); ok {
		return df.with(plan.NewSort(append(append([]plan.SortOrder(nil), s.Orders...), order), s.Child))
	}
	return df.with(plan.NewSort([]plan.SortOrder{order}, df.logical))
}

// Limit keeps the first n rows.
func (df *DataFrame) Limit(n int64) *DataFrame {
	if err := df.builderReady(); err != nil {
		return df.fail(err)
	}
	return df.with(plan.NewLimit(n, df.logical))
}

// Distinct removes duplicate rows.
func (df *DataFrame) Distinct() *DataFrame {
	if err := df.builderReady(); err != nil {
		return df.fail(err)
	}
	return df.with(plan.NewDistinct(df.logical))
}

// compile materializes the compiled form.
func (df *DataFrame) compile() error {
	if df.err != nil {
		return df.err
	}
	if df.compiled != nil {
		return nil
	}
	c, err := df.sess.engine.CompilePlan(df.logical, df.sess.options())
	if err != nil {
		return err
	}
	df.compiled = c
	return nil
}

// Collect executes the query and returns all rows.
func (df *DataFrame) Collect() ([]Row, error) {
	return df.CollectContext(context.Background())
}

// CollectContext is Collect under a Go context: cancellation or a deadline
// on ctx cooperatively cancels the run (workers observe it between
// morsels) and surfaces an error wrapping both the context's error and
// cluster.ErrCanceled. WithQueryTimeout adds a session-wide deadline on
// top.
func (df *DataFrame) CollectContext(ctx context.Context) ([]Row, error) {
	if err := df.compile(); err != nil {
		return nil, err
	}
	res, err := df.sess.runCtx(ctx, df.compiled)
	if err != nil {
		return nil, err
	}
	df.metrics = res.Metrics
	df.duration = res.Duration
	return res.Rows, nil
}

// Count executes the query and returns the row count.
func (df *DataFrame) Count() (int, error) {
	rows, err := df.Collect()
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

// Schema compiles the query and returns its output schema.
func (df *DataFrame) Schema() (*Schema, error) {
	if err := df.compile(); err != nil {
		return nil, err
	}
	return df.compiled.Schema(), nil
}

// Explain compiles the query and renders all plan stages. After a Collect
// it additionally appends the per-stage makespan breakdown of that run, so
// the dominating stage of the query is visible next to the stage DAG.
func (df *DataFrame) Explain() (string, error) {
	if err := df.compile(); err != nil {
		return "", err
	}
	out := df.compiled.Explain()
	if df.metrics != nil {
		if breakdown := df.metrics.FormatStageTimes(); breakdown != "" {
			out += "== Stage Times (last run) ==\n" + breakdown
		}
		out += fmt.Sprintf("batches decoded: %d\n", df.metrics.BatchesDecoded())
		out += fmt.Sprintf("vectorized batches: %d\n", df.metrics.VectorizedBatches())
		if ms := df.metrics.FormatMorsels(); ms != "" {
			out += ms
		}
		if ds := df.metrics.FormatCostDecisions(); ds != "" {
			out += "cost decisions:\n" + ds
		}
		if rc := df.metrics.FormatResultCache(); rc != "" {
			out += rc + "\n"
		}
		if fs := df.metrics.FormatFaults(); fs != "" {
			out += fs
		}
		if sg := df.metrics.FormatSegments(); sg != "" {
			out += sg + "\n"
		}
	}
	return out, nil
}

// Metrics returns the execution counters of the last Collect (nil before
// the first execution).
func (df *DataFrame) Metrics() *Metrics { return df.metrics }

// Duration returns the wall-clock time of the last Collect.
func (df *DataFrame) Duration() time.Duration { return df.duration }
