package skysql

// This file is the session's serving tier: the knobs and machinery that
// make one Session safe and well-behaved under many concurrent queries —
// admission control (a bounded semaphore with queue-or-reject semantics),
// the global memory governor (one live-bytes pool stretched across every
// query in flight), and the stats surfaces the skysqld server exposes.
// Single-query sessions pay nothing: without the options, runCtx takes
// the exact pre-serving path.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrAdmission is returned by Collect when the session's admission
// controller rejects the query: every WithMaxConcurrentQueries slot is
// busy and the admission queue (WithAdmissionQueue) is full — or the
// caller's context expired while the query was queued. The skysqld server
// maps it to HTTP 429. Rejection is immediate and stateless; retrying
// later is always safe.
var ErrAdmission = errors.New("skysql: query rejected by admission control")

// WithMaxConcurrentQueries bounds the number of queries the session
// executes at once. The n+1st concurrent Collect is rejected with
// ErrAdmission — or, when WithAdmissionQueue grants queue slots, parked
// until a running query finishes. 0 (the default) means unbounded: every
// query is admitted immediately, the pre-serving behaviour.
func WithMaxConcurrentQueries(n int) Option {
	return func(s *Session) {
		if n > 0 {
			s.maxConcurrent = n
		}
	}
}

// WithAdmissionQueue grants n queue slots behind the
// WithMaxConcurrentQueries semaphore: a query arriving with every
// execution slot busy parks in the queue (FIFO by slot handoff) instead
// of being rejected, and is rejected only when the queue itself is full
// or its context expires while waiting. 0 (the default) is pure
// queue-or-429 semantics: reject immediately when saturated. No effect
// without WithMaxConcurrentQueries.
func WithAdmissionQueue(n int) Option {
	return func(s *Session) {
		if n > 0 {
			s.queueDepth = n
		}
	}
}

// WithGlobalMemoryBudget caps the live materialized bytes summed across
// every query in flight, extending the per-query WithMemoryBudget
// degradation ladder to a shared pool: when the pool crosses the same
// soft thresholds (50% spill, 60% drop sidecars, 80% collapse fan-out),
// each running query degrades itself at its next cooperative checkpoint,
// so concurrent queries shrink together before any one of them fails
// with ErrMemoryBudget. bytes <= 0 creates a metering-only pool: live
// bytes and in-flight counts are tracked (the skysqld /stats surface)
// but nothing degrades.
func WithGlobalMemoryBudget(bytes int64) Option {
	return func(s *Session) {
		s.governed = true
		s.globalBudget = bytes
	}
}

// admission is the session's query admission controller: a semaphore of
// execution slots with a bounded waiting room behind it.
type admission struct {
	slots      chan struct{}
	queueDepth int

	waiters  atomic.Int64
	inFlight atomic.Int64
	admitted atomic.Int64
	queued   atomic.Int64
	rejected atomic.Int64
}

func newAdmission(maxConcurrent, queueDepth int) *admission {
	return &admission{slots: make(chan struct{}, maxConcurrent), queueDepth: queueDepth}
}

// acquire claims an execution slot, queueing when allowed. The returned
// error is nil (slot held; the caller must release) or wraps
// ErrAdmission.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		a.inFlight.Add(1)
		return nil
	default:
	}
	// Saturated. The waiter count is reserved before parking so that the
	// queue bound holds under concurrent arrivals: more than queueDepth
	// simultaneous waiters is impossible, not merely unlikely.
	if a.queueDepth <= 0 || a.waiters.Add(1) > int64(a.queueDepth) {
		if a.queueDepth > 0 {
			a.waiters.Add(-1)
		}
		a.rejected.Add(1)
		return fmt.Errorf("%w: %d queries running, queue full", ErrAdmission, cap(a.slots))
	}
	a.queued.Add(1)
	defer a.waiters.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		a.inFlight.Add(1)
		return nil
	case <-ctx.Done():
		a.rejected.Add(1)
		return fmt.Errorf("%w: context expired while queued: %w", ErrAdmission, ctx.Err())
	}
}

// release returns the slot claimed by a successful acquire.
func (a *admission) release() {
	a.inFlight.Add(-1)
	<-a.slots
}

// AdmissionStats is a point-in-time snapshot of the session's admission
// controller. Admitted/Queued/Rejected are cumulative; InFlight and
// Waiting are instantaneous.
type AdmissionStats struct {
	MaxConcurrent int   // execution-slot bound (0 = admission disabled)
	QueueDepth    int   // waiting-room bound behind the slots
	InFlight      int64 // queries currently holding a slot
	Waiting       int64 // queries currently parked in the queue
	Admitted      int64 // total queries granted a slot
	Queued        int64 // total queries that waited before admission
	Rejected      int64 // total queries turned away (429s)
}

// AdmissionStats returns the admission controller's counters; the zero
// value when WithMaxConcurrentQueries was not set.
func (s *Session) AdmissionStats() AdmissionStats {
	if s.admission == nil {
		return AdmissionStats{}
	}
	a := s.admission
	return AdmissionStats{
		MaxConcurrent: cap(a.slots),
		QueueDepth:    a.queueDepth,
		InFlight:      a.inFlight.Load(),
		Waiting:       a.waiters.Load(),
		Admitted:      a.admitted.Load(),
		Queued:        a.queued.Load(),
		Rejected:      a.rejected.Load(),
	}
}

// GovernorStats is a point-in-time snapshot of the session's global
// memory governor (WithGlobalMemoryBudget).
type GovernorStats struct {
	Budget      int64 // global byte budget (0 = metering-only)
	LiveBytes   int64 // bytes live across every query in flight
	InFlight    int64 // queries currently attached to the pool
	Escalations int64 // degradation steps taken under global pressure
}

// GovernorStats returns the global memory governor's counters; the zero
// value when WithGlobalMemoryBudget was not set.
func (s *Session) GovernorStats() GovernorStats {
	if s.governor == nil {
		return GovernorStats{}
	}
	return GovernorStats{
		Budget:      s.governor.Budget(),
		LiveBytes:   s.governor.LiveBytes(),
		InFlight:    s.governor.InFlight(),
		Escalations: s.governor.Escalations(),
	}
}

// PoolSize returns the size the session's work-stealing worker pool has
// (or would have, when not yet created): the WithWorkerPool value, else
// min(NumCPU, executors).
func (s *Session) PoolSize() int {
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	if s.pool != nil {
		return s.pool.Size()
	}
	return s.poolSizeLocked()
}
