// Benchmarks regenerating each table and figure of the paper at reduced
// scale — one Benchmark per artifact, named as in DESIGN.md's experiment
// index. Each benchmark iterates the full pipeline (generate → parse →
// analyze → optimize → plan → execute) for representative corners of the
// figure's parameter sweep; the complete sweeps with paper-formatted
// output are produced by `go run ./cmd/skybench -experiment <id>`.
package skysql_test

import (
	"fmt"
	"testing"

	"skysql/internal/bench"
	"skysql/internal/core"
)

// benchConfig returns the scaled-down harness configuration used by all
// benchmarks: small enough that the quadratic reference algorithm stays
// sub-second per run.
func benchConfig() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.Scale = 1.0
	return cfg
}

const (
	benchAirbnbRows      = 800
	benchStoreSalesRows  = 1000
	benchMusicBrainzRows = 600
)

func runSpec(b *testing.B, cfg bench.Config, spec bench.Spec) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		m := cfg.Run(spec)
		if m.Err != nil {
			b.Fatal(m.Err)
		}
		if m.TimedOut {
			b.Fatal("benchmark cell timed out")
		}
	}
}

// algSweep runs one sub-benchmark per applicable algorithm.
func algSweep(b *testing.B, cfg bench.Config, complete bool, label string, spec func(core.Algorithm) bench.Spec) {
	b.Helper()
	for _, alg := range bench.AlgorithmsFor(complete) {
		alg := alg
		b.Run(label+"/"+alg.Name, func(b *testing.B) { runSpec(b, cfg, spec(alg)) })
	}
}

// ---- Figures 3–7: the main evaluation (§6.4, Tables 3–12) ----

func BenchmarkFig3DimsAirbnb(b *testing.B) {
	cfg := benchConfig()
	for _, dims := range []int{2, 6} {
		dims := dims
		algSweep(b, cfg, true, fmt.Sprintf("complete/dims=%d", dims), func(a core.Algorithm) bench.Spec {
			return bench.Spec{Dataset: "airbnb", Complete: true, Dimensions: dims,
				Tuples: benchAirbnbRows, Executors: 5, Algorithm: a}
		})
		algSweep(b, cfg, false, fmt.Sprintf("incomplete/dims=%d", dims), func(a core.Algorithm) bench.Spec {
			return bench.Spec{Dataset: "airbnb", Complete: false, Dimensions: dims,
				Tuples: benchAirbnbRows, Executors: 5, Algorithm: a}
		})
	}
}

func BenchmarkFig4DimsStoreSales(b *testing.B) {
	cfg := benchConfig()
	for _, dims := range []int{1, 2, 6} { // 1→2 shows the skyline shrink
		dims := dims
		algSweep(b, cfg, true, fmt.Sprintf("complete/dims=%d", dims), func(a core.Algorithm) bench.Spec {
			return bench.Spec{Dataset: "store_sales", Complete: true, Dimensions: dims,
				Tuples: benchStoreSalesRows, Executors: 10, Algorithm: a}
		})
	}
	algSweep(b, cfg, false, "incomplete/dims=6", func(a core.Algorithm) bench.Spec {
		return bench.Spec{Dataset: "store_sales", Complete: false, Dimensions: 6,
			Tuples: benchStoreSalesRows, Executors: 10, Algorithm: a}
	})
}

func BenchmarkFig5Tuples(b *testing.B) {
	cfg := benchConfig()
	for _, n := range []int{500, 2000} {
		n := n
		algSweep(b, cfg, true, fmt.Sprintf("complete/n=%d", n), func(a core.Algorithm) bench.Spec {
			return bench.Spec{Dataset: "store_sales", Complete: true, Dimensions: 6,
				Tuples: n, Executors: 3, Algorithm: a}
		})
		algSweep(b, cfg, false, fmt.Sprintf("incomplete/n=%d", n), func(a core.Algorithm) bench.Spec {
			return bench.Spec{Dataset: "store_sales", Complete: false, Dimensions: 6,
				Tuples: n, Executors: 3, Algorithm: a}
		})
	}
}

func BenchmarkFig6ExecutorsAirbnb(b *testing.B) {
	cfg := benchConfig()
	for _, execs := range []int{1, 5, 10} {
		execs := execs
		algSweep(b, cfg, true, fmt.Sprintf("complete/executors=%d", execs), func(a core.Algorithm) bench.Spec {
			return bench.Spec{Dataset: "airbnb", Complete: true, Dimensions: 6,
				Tuples: benchAirbnbRows, Executors: execs, Algorithm: a}
		})
	}
}

func BenchmarkFig7ExecutorsStoreSales(b *testing.B) {
	cfg := benchConfig()
	for _, execs := range []int{1, 5, 10} {
		execs := execs
		algSweep(b, cfg, true, fmt.Sprintf("complete/executors=%d", execs), func(a core.Algorithm) bench.Spec {
			return bench.Spec{Dataset: "store_sales", Complete: true, Dimensions: 6,
				Tuples: benchStoreSalesRows, Executors: execs, Algorithm: a}
		})
		algSweep(b, cfg, false, fmt.Sprintf("incomplete/executors=%d", execs), func(a core.Algorithm) bench.Spec {
			return bench.Spec{Dataset: "store_sales", Complete: false, Dimensions: 6,
				Tuples: benchStoreSalesRows, Executors: execs, Algorithm: a}
		})
	}
}

// ---- Appendix C: memory figures (8–10) and extended sweeps (11–15) ----

func BenchmarkFig8MemoryAirbnb(b *testing.B) {
	cfg := benchConfig()
	for _, execs := range []int{1, 10} {
		execs := execs
		algSweep(b, cfg, true, fmt.Sprintf("executors=%d", execs), func(a core.Algorithm) bench.Spec {
			return bench.Spec{Dataset: "airbnb", Complete: true, Dimensions: 6,
				Tuples: benchAirbnbRows, Executors: execs, Algorithm: a}
		})
	}
}

func BenchmarkFig9MemoryStoreSales(b *testing.B) {
	cfg := benchConfig()
	for _, execs := range []int{1, 10} {
		execs := execs
		algSweep(b, cfg, true, fmt.Sprintf("executors=%d", execs), func(a core.Algorithm) bench.Spec {
			return bench.Spec{Dataset: "store_sales", Complete: true, Dimensions: 6,
				Tuples: benchStoreSalesRows, Executors: execs, Algorithm: a}
		})
	}
}

func BenchmarkFig10MemoryTuples(b *testing.B) {
	cfg := benchConfig()
	for _, n := range []int{500, 2000} {
		n := n
		algSweep(b, cfg, true, fmt.Sprintf("n=%d", n), func(a core.Algorithm) bench.Spec {
			return bench.Spec{Dataset: "store_sales", Complete: true, Dimensions: 6,
				Tuples: n, Executors: 5, Algorithm: a}
		})
	}
}

func BenchmarkFig11DimsByExecutorsAirbnb(b *testing.B) {
	cfg := benchConfig()
	for _, execs := range []int{2, 10} {
		for _, dims := range []int{3, 6} {
			execs, dims := execs, dims
			algSweep(b, cfg, true, fmt.Sprintf("executors=%d/dims=%d", execs, dims), func(a core.Algorithm) bench.Spec {
				return bench.Spec{Dataset: "airbnb", Complete: true, Dimensions: dims,
					Tuples: benchAirbnbRows, Executors: execs, Algorithm: a}
			})
		}
	}
}

func BenchmarkFig12DimsByExecutorsStoreSales(b *testing.B) {
	cfg := benchConfig()
	for _, execs := range []int{2, 10} {
		for _, dims := range []int{3, 6} {
			execs, dims := execs, dims
			algSweep(b, cfg, true, fmt.Sprintf("executors=%d/dims=%d", execs, dims), func(a core.Algorithm) bench.Spec {
				return bench.Spec{Dataset: "store_sales", Complete: true, Dimensions: dims,
					Tuples: benchStoreSalesRows, Executors: execs, Algorithm: a}
			})
		}
	}
}

func BenchmarkFig13TuplesByExecutors(b *testing.B) {
	cfg := benchConfig()
	for _, execs := range []int{2, 10} {
		for _, n := range []int{500, 2000} {
			execs, n := execs, n
			algSweep(b, cfg, true, fmt.Sprintf("executors=%d/n=%d", execs, n), func(a core.Algorithm) bench.Spec {
				return bench.Spec{Dataset: "store_sales", Complete: true, Dimensions: 6,
					Tuples: n, Executors: execs, Algorithm: a}
			})
		}
	}
}

func BenchmarkFig14ExecutorsByDimsAirbnb(b *testing.B) {
	cfg := benchConfig()
	for _, dims := range []int{3, 6} {
		for _, execs := range []int{1, 10} {
			dims, execs := dims, execs
			algSweep(b, cfg, true, fmt.Sprintf("dims=%d/executors=%d", dims, execs), func(a core.Algorithm) bench.Spec {
				return bench.Spec{Dataset: "airbnb", Complete: true, Dimensions: dims,
					Tuples: benchAirbnbRows, Executors: execs, Algorithm: a}
			})
		}
	}
}

func BenchmarkFig15ExecutorsByDimsStoreSales(b *testing.B) {
	cfg := benchConfig()
	for _, dims := range []int{3, 6} {
		for _, execs := range []int{1, 10} {
			dims, execs := dims, execs
			algSweep(b, cfg, true, fmt.Sprintf("dims=%d/executors=%d", dims, execs), func(a core.Algorithm) bench.Spec {
				return bench.Spec{Dataset: "store_sales", Complete: true, Dimensions: dims,
					Tuples: benchStoreSalesRows, Executors: execs, Algorithm: a}
			})
		}
	}
}

// ---- Appendix E: complex MusicBrainz queries (figures 16–19) ----

func BenchmarkFig16ComplexDims(b *testing.B) {
	cfg := benchConfig()
	for _, dims := range []int{2, 6} {
		dims := dims
		algSweep(b, cfg, true, fmt.Sprintf("complete/dims=%d", dims), func(a core.Algorithm) bench.Spec {
			return bench.Spec{Dataset: "musicbrainz", Complete: true, Dimensions: dims,
				Tuples: benchMusicBrainzRows, Executors: 3, Algorithm: a}
		})
		algSweep(b, cfg, false, fmt.Sprintf("incomplete/dims=%d", dims), func(a core.Algorithm) bench.Spec {
			return bench.Spec{Dataset: "musicbrainz", Complete: false, Dimensions: dims,
				Tuples: benchMusicBrainzRows, Executors: 3, Algorithm: a}
		})
	}
}

func BenchmarkFig17ComplexMemory(b *testing.B) {
	cfg := benchConfig()
	algSweep(b, cfg, true, "dims=6", func(a core.Algorithm) bench.Spec {
		return bench.Spec{Dataset: "musicbrainz", Complete: true, Dimensions: 6,
			Tuples: benchMusicBrainzRows, Executors: 5, Algorithm: a}
	})
}

func BenchmarkFig18ComplexExecutors(b *testing.B) {
	cfg := benchConfig()
	for _, execs := range []int{1, 3, 10} {
		execs := execs
		algSweep(b, cfg, true, fmt.Sprintf("executors=%d", execs), func(a core.Algorithm) bench.Spec {
			return bench.Spec{Dataset: "musicbrainz", Complete: true, Dimensions: 6,
				Tuples: benchMusicBrainzRows, Executors: execs, Algorithm: a}
		})
	}
}

func BenchmarkFig19ComplexExecutorsMemory(b *testing.B) {
	cfg := benchConfig()
	for _, execs := range []int{1, 10} {
		execs := execs
		algSweep(b, cfg, false, fmt.Sprintf("executors=%d", execs), func(a core.Algorithm) bench.Spec {
			return bench.Spec{Dataset: "musicbrainz", Complete: false, Dimensions: 6,
				Tuples: benchMusicBrainzRows, Executors: execs, Algorithm: a}
		})
	}
}

// ---- Ablation: extension algorithms (§7) on the same workload ----

func BenchmarkAblationExtensionAlgorithms(b *testing.B) {
	cfg := benchConfig()
	algs := append([]core.Algorithm{{Name: "distributed complete"}}, core.ExtensionAlgorithms()...)
	algs[0], _ = core.AlgorithmByName("distributed complete")
	for _, alg := range algs {
		alg := alg
		b.Run(alg.Name, func(b *testing.B) {
			runSpec(b, cfg, bench.Spec{Dataset: "airbnb", Complete: true, Dimensions: 6,
				Tuples: benchAirbnbRows, Executors: 5, Algorithm: alg})
		})
	}
}
