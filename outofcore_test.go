package skysql_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"skysql"
	"skysql/internal/datagen"
	"skysql/internal/storage"
)

// TestSegmentStorageSessionBitIdentical is the public-API face of the
// storage contract: a session storing its tables as paged columnar
// segments — with or without zone-map pruning — must answer every query
// exactly like the in-memory session, on the same mixed workload the
// robustness suite uses.
func TestSegmentStorageSessionBitIdentical(t *testing.T) {
	plain := wideSession(t)
	want, err := plain.Query(wideSkyline)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts []skysql.Option
	}{
		{"segments", []skysql.Option{skysql.WithSegmentStorage(""), skysql.WithSegmentRows(64)}},
		{"segments on disk", []skysql.Option{skysql.WithSegmentStorage(t.TempDir()), skysql.WithSegmentRows(64)}},
		{"segments unpruned", []skysql.Option{
			skysql.WithSegmentStorage(""), skysql.WithSegmentRows(64), skysql.WithoutSegmentPruning()}},
	} {
		sess := wideSession(t, tc.opts...)
		got, err := sess.Query(wideSkyline)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if fmt.Sprint(rowsToStrings(got)) != fmt.Sprint(rowsToStrings(want)) {
			t.Errorf("%s: segment-backed rows differ from in-memory:\n got %v\nwant %v", tc.name, got, want)
		}
	}
}

// TestOutOfCoreSpillCompletesBudgetedQuery: with a spill directory armed,
// a budget that forces the governor to degrade must engage the
// spill-to-segments rung first — gather buffers move to temporary
// segment files, SegmentsSpilled lands in the metrics — and the query
// must still return the identical skyline.
func TestOutOfCoreSpillCompletesBudgetedQuery(t *testing.T) {
	free := wideSession(t)
	df, err := free.SQL(wideSkyline)
	if err != nil {
		t.Fatal(err)
	}
	want, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	peak := df.Metrics().PeakBytes()
	if peak == 0 {
		t.Fatal("unbudgeted run recorded no peak bytes")
	}

	sess := wideSession(t,
		skysql.WithMemoryBudget(peak+peak/4),
		skysql.WithSpillDirectory(t.TempDir()))
	bdf, err := sess.SQL(wideSkyline)
	if err != nil {
		t.Fatal(err)
	}
	got, err := bdf.Collect()
	if err != nil {
		t.Fatalf("budgeted collect with spill: %v", err)
	}
	if fmt.Sprint(rowsToStrings(got)) != fmt.Sprint(rowsToStrings(want)) {
		t.Fatalf("spilled rows differ:\n got %v\nwant %v", got, want)
	}
	m := bdf.Metrics()
	if m.SegmentsSpilled() == 0 {
		t.Error("budgeted run never spilled — the spill tier did not engage")
	}
	steps := m.Degradations()
	if len(steps) == 0 {
		t.Fatal("budget near the peak never degraded — tighten the test budget")
	}
	if !strings.Contains(steps[0], "spill-to-segments") {
		t.Errorf("first degradation rung %q, want spill-to-segments first (ladder order)", steps[0])
	}
}

// TestMillionPointPruningBitIdentical is the headline acceptance run: a
// filtered skyline over a segment-backed million-point dataset must skip
// segments via zone maps and return exactly the in-memory answer. The
// data is clustered on the filter column (sorted by d1) so the selective
// cut maps onto whole segments.
func TestMillionPointPruningBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("million-point dataset; skipped with -short")
	}
	const n = 1 << 20
	tab := datagen.Synthetic(datagen.Correlated, n, 2, datagen.Config{Seed: 7, Complete: true})
	rows := append([]skysql.Row(nil), tab.Rows...)
	sort.SliceStable(rows, func(i, j int) bool {
		return rows[i][1].AsFloat() < rows[j][1].AsFloat()
	})
	const query = "SELECT * FROM pts WHERE d1 < 0.01 SKYLINE OF COMPLETE d1 MIN, d2 MIN"

	mem := skysql.NewSession()
	t.Cleanup(mem.Close)
	if err := mem.CreateTable("pts", tab.Schema, rows); err != nil {
		t.Fatal(err)
	}
	want, err := mem.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("empty skyline proves nothing")
	}

	seg := skysql.NewSession(skysql.WithSegmentStorage(""))
	t.Cleanup(seg.Close)
	if err := seg.CreateTable("pts", tab.Schema, rows); err != nil {
		t.Fatal(err)
	}
	df, err := seg.SQL(query)
	if err != nil {
		t.Fatal(err)
	}
	got, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rowsToStrings(got)) != fmt.Sprint(rowsToStrings(want)) {
		t.Fatal("segment-backed million-point skyline differs from in-memory")
	}
	// 1M rows at the default 65536-row segments is 16 zone maps; d1 < 0.01
	// on d1-sorted data leaves all but the leading segments provably empty.
	if pruned := df.Metrics().SegmentsPruned(); pruned < 1 {
		t.Errorf("SegmentsPruned = %d, want at least 1 of 16 segments skipped", pruned)
	}
}

// TestOpenSegmentsRoundTrip covers the ingest path `datagen -segments`
// uses: stream synthetic rows into a segment directory with the storage
// writer, reopen it footers-first via OpenSegments, and get the same
// query answer as a session holding the rows in memory.
func TestOpenSegmentsRoundTrip(t *testing.T) {
	const n = 3000
	cfg := datagen.Config{Seed: 11, Complete: true}
	tab := datagen.Synthetic(datagen.AntiCorrelated, n, 3, cfg)

	dir := t.TempDir()
	w := storage.NewWriter(tab.Schema, dir, "pts", 512)
	if err := datagen.SyntheticStream(datagen.AntiCorrelated, n, 3, cfg, w.Append); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}

	mem := skysql.NewSession()
	t.Cleanup(mem.Close)
	if err := mem.CreateTable("pts", tab.Schema, tab.Rows); err != nil {
		t.Fatal(err)
	}
	seg := skysql.NewSession()
	t.Cleanup(seg.Close)
	if err := seg.OpenSegments("pts", dir); err != nil {
		t.Fatal(err)
	}

	const query = "SELECT * FROM pts WHERE d1 < 0.5 SKYLINE OF COMPLETE d1 MIN, d2 MIN, d3 MIN"
	want, err := mem.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	got, err := seg.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rowsToStrings(got)) != fmt.Sprint(rowsToStrings(want)) {
		t.Fatal("OpenSegments session answered differently from the in-memory session")
	}
}
