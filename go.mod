module skysql

go 1.22
