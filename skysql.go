// Package skysql is a distributed SQL query engine with native skyline
// query support, a Go reproduction of "Integration of Skyline Queries into
// Spark SQL" (Grasmann, Pichler, Selzer — EDBT 2023).
//
// The engine accepts standard SELECT statements extended with the paper's
// skyline clause:
//
//	SELECT ... FROM ... WHERE ... GROUP BY ... HAVING ...
//	SKYLINE OF [DISTINCT] [COMPLETE] dim {MIN|MAX|DIFF}, ...
//	ORDER BY ... LIMIT ...
//
// and also exposes a DataFrame-style API where skyline dimensions are
// given with Smin, Smax and Sdiff, mirroring the paper's §5.8:
//
//	sess := skysql.NewSession(skysql.WithExecutors(5))
//	sess.MustCreateTable("hotels", fields, rows)
//	df, err := sess.Table("hotels").
//		Skyline(skysql.Smin("price"), skysql.Smax("user_rating")).
//		Collect()
//
// Queries run on a simulated cluster: a pool of executor workers over
// partitioned data with explicit exchanges, so that the paper's
// distributed algorithm behaviour (local vs global skylines, null-bitmap
// partitioning for incomplete data, AllTuples gathering) is preserved.
//
// Execution follows Spark's stage/DAG model: the physical planner compiles
// the operator tree into exchange-bounded stages, fusing each maximal
// chain of narrow operators (scan, filter, project, per-partition limit,
// local skyline) into a single per-partition pass scheduled as one task
// round. Pipeline breakers — exchanges, global skylines, sorts,
// aggregates, joins — cut the stages exactly where a Spark shuffle would,
// so a filter → project → local-skyline chain materializes no
// intermediate datasets and costs one scheduling round instead of three.
// EXPLAIN renders the stage boundaries; WithoutStageFusion restores the
// per-operator path for A/B comparison.
//
// Skyline dominance testing — the O(n²) innermost loop of every skyline
// operator — runs on a columnar kernel: each partition is decoded once
// into direction-normalized float64 vectors and every dominance test is
// pure index arithmetic. The decoded batches are carried through the data
// plane as per-partition dataset sidecars: local skylines emit their
// surviving batch rows, exchanges merge or re-bucket them by index
// arithmetic (the Grid/Angle/Zorder schemes bucket directly on the decoded
// columns), and the global skyline runs off the merged batch — one decode
// per input partition for the whole plan. Partitions with non-numeric or
// otherwise non-decodable skyline dimensions fall back transparently to
// the boxed compare path; WithoutColumnarKernel forces that path (and
// row-only exchanges) everywhere for A/B ablation. Exchanges can also pick
// their partition counts adaptively from observed intermediate sizes
// (WithAdaptiveExchange), collapsing tiny results into fewer tasks.
//
// # Vectorized expression evaluation
//
// Expressions inside the narrow pipeline — WHERE predicates, projection
// outputs, the single-dimension extremum rewrite — evaluate column at a
// time over the decoded batch whenever they can, instead of boxing one
// row at a time. A fused scan → filter → local-skyline stage decodes each
// partition once at the scan (the skyline dimensions, rebased through any
// intervening projections, plus every other numeric column the stage's
// expressions reference), the filter reduces a selection bitmap over the
// dense columns, projections append computed columns, and the skyline
// reuses the surviving batch — the whole narrow chain touches each value's
// boxed form exactly once. The contract is strict bit-identity with the
// boxed path, enforced by two refusal layers: a static probe accepts only
// column references of numeric kinds, numeric/boolean/NULL literals,
// arithmetic, comparisons, AND/OR/NOT, unary minus, and IS [NOT] NULL
// (strings, CASE, IN, functions, aggregates, and integer literals beyond
// ±2⁵³ are served boxed), and a runtime guard refuses any batch whose
// values the float64 kernels cannot reproduce exactly (missing dense
// column, integer arithmetic leaving the ±2⁵³ range where int64 wraps but
// float64 rounds). Refused expressions fall back to the boxed row loop —
// with the sidecar still carried forward by index selection — so results
// are always row-for-row identical. Metrics.VectorizedBatches counts the
// partition passes the engine actually served (surfaced by EXPLAIN after a
// run, the shell's \s, and skybench -json); WithoutVectorizedExprs forces
// the boxed path everywhere for A/B ablation, mirroring
// WithoutColumnarKernel.
//
// # Cost-gated adaptive planning
//
// The levers above are no longer static: a light-weight cost model
// (internal/cost) — column min/max/null-fraction sketches computed once
// per scan plus textbook predicate-shape heuristics — drives three
// decisions the engine used to hardcode.
//
// First, decode-at-scan is gated per fused stage: eager decoding pays the
// decode width on every pre-filter row to run the filters vectorized,
// deferring pays the boxed filter but decodes only the survivors, and the
// gate picks whichever the estimated filter selectivity × decode width
// says is cheaper (selective filters defer; permissive ones decode).
// Second, exchanges are adaptive by default: each exchange derives its
// rows-per-partition target from the observed upstream size and the
// executor count, so tiny intermediates collapse into the few tasks that
// amortize their scheduling overhead while large inputs still fan out to
// every executor; WithAdaptiveExchange pins one explicit target instead,
// WithoutAdaptiveExchange restores the static fan-out for A/B. Third, the
// Grid/Angle/Zorder exchanges accept a sidecar decoded at the scan below
// them, so a filter under a partitioned exchange vectorizes instead of
// forcing the boxed key path, and the exchange buckets on the decoded
// columns it is handed.
//
// The fallback rules mirror the vectorization contract: every gated
// choice selects between execution strategies that are bit-identical by
// construction (contract-tested across every SkylineStrategy × fusion ×
// kernel × vectorization ablation), so a wrong estimate costs time, never
// correctness — and when the model cannot see (no scan below the stage,
// no filters, no sketchable columns) the engine simply keeps the
// pre-gate behaviour. Every decision is recorded in
// Metrics.CostDecisions, surfaced by EXPLAIN after a run, the shell's \s,
// and skybench -json; `skybench -experiment costgate` measures the gate
// (BENCH_PR5.json), and CI's benchdiff gates the deterministic counters
// of the whole BENCH_*.json trajectory against the committed baselines.
//
// # Morsel-driven parallel runtime
//
// Task execution is morsel-driven: a session owns one persistent
// work-stealing worker pool (sized min(runtime.NumCPU(), executors) by
// default; WithWorkerPool pins it), and stages submit morsels — bounded
// contiguous row ranges of a partition together with a zero-copy
// Batch.Slice view of its columnar sidecar — rather than one task per
// partition. Each worker owns a deque: it pushes and pops its own morsels
// LIFO (cache-warm) and steals FIFO from a random victim when its deque
// drains, so a skewed hot partition is automatically spread across idle
// workers instead of serializing the stage on one task. The morsel size
// is cost-chosen (cost.MorselTarget: about four morsels per executor,
// never below 512 rows) so scheduling overhead stays amortized.
//
// Two serial hot spots are parallelized on top of the pool. Narrow
// stages whose operators are morsel-safe (filters, projections, and the
// complete unbounded local skyline — see physical.MorselSplittable)
// split their partitions into morsels; the final global skyline runs
// morsel-parallel kernel twins (shared-nothing local windows plus a
// parallel cross-chunk filter) that emit the exact serial index sequence.
// Both paths are bit-identical to serial execution by construction and
// contract-tested under the race detector across every ablation.
//
// The A/B knobs mirror the other levers: WithoutMorselParallelism
// restores whole-partition tasks and the serial global kernel,
// WithWorkerPool sizes the pool, and WithSimulatedTime models the
// parallelism instead of using the pool (morsel durations feed the same
// greedy makespan model as whole-partition tasks, so simulated speedups
// stay honest). Metrics report morsels executed, steals, per-worker busy
// time, and achieved parallelism in EXPLAIN, the shell's \s, and
// skybench -json; `skybench -experiment parallel` sweeps worker counts
// over correlated, anti-correlated, and skewed workloads
// (BENCH_PR6.json), with the deterministic morsel counts benchdiff-gated.
//
// # Fault-tolerant execution
//
// The runtime inherits Spark's defining robustness property: tasks are
// pure functions of their input partition or morsel, so a failed task is
// simply re-executed from lineage. The fault-tolerance contract is:
//
//   - What is retried: task attempts failing with an error classified
//     transient (cluster.Transient / IsTransient — infrastructure-style
//     failures, including injected chaos faults) are re-executed with
//     exponential backoff and deterministic jitter, up to the
//     WithTaskRetries budget (default 3), on every execution path —
//     simulated, goroutine rounds, and the work-stealing pool. Retried
//     runs are bit-identical to fault-free runs (contract-tested at fault
//     rates up to 0.3 across every strategy × fusion × kernel ×
//     vectorization ablation, under the race detector).
//
//   - What degrades: under a WithMemoryBudget cap, live materialized
//     bytes past 60% of the budget drop the columnar sidecars (boxed
//     execution — bit-identical, just slower), and past 80% exchanges
//     collapse their fan-out to shrink concurrently-live buffers. Both
//     steps land in Metrics.Degradations.
//
//   - What fails: non-transient errors fail fast; a task exhausting its
//     retry budget fails the query with a cluster.TaskError naming the
//     stage, partition, morsel, and attempt count; and a budget excess
//     with both degradation steps already taken fails with
//     ErrMemoryBudget. Deadlines (WithQueryTimeout, CollectContext) cancel
//     cooperatively between morsels, surfacing an error wrapping both
//     context.DeadlineExceeded and cluster.ErrCanceled.
//
// WithFaultInjection wires a deterministic chaos injector (seeded;
// decisions are pure functions of (seed, stage, task, attempt)) through
// every task attempt, so chaos runs are bit-reproducible: the
// TaskRetries/InjectedFaults/TasksFailed/DegradationSteps counters in
// Metrics — surfaced by EXPLAIN, the shell's \s, and skybench -json —
// repeat exactly, and `skybench -experiment chaos` sweeps fault rate ×
// retry budget (BENCH_PR7.json) with those counters benchdiff-gated.
//
// # Out-of-core columnar storage
//
// Tables can be stored as paged columnar segments instead of in-memory
// row slices: WithSegmentStorage(dir) makes CreateTable, RegisterTable,
// and LoadCSV encode their rows into bounded segments (WithSegmentRows,
// default 65536 rows) of per-column dense pages with null masks, each
// segment ending in a footer that carries per-column min/max zone maps,
// null and NaN counts, and equi-width histograms. OpenSegments attaches
// an existing segment directory by reading footers alone — row counts,
// schema, and statistics come from the segment tails, so opening a
// million-point dataset costs no decode — and `datagen -segments`
// writes such directories directly.
//
// Scans exploit the footers twice. Zone-map pruning: the planner pushes
// the filter predicates sitting above each scan down to it, and the scan
// skips every segment whose zone map proves the predicate can keep no
// row (conservatively: NaN-bearing segments never min-prune, all-NULL
// columns always prune, non-numeric columns never do) before decoding a
// single page — WithoutSegmentPruning turns the skip off for A/B, and
// results are bit-identical either way. Statistics: footer histograms
// feed the cost model's selectivity estimator, replacing the uniform
// interpolation on skewed columns.
//
// The memory governor gains a spill tier: with WithSpillDirectory set,
// the first degradation rung under a WithMemoryBudget cap writes gather
// inputs out as temporary segment files and re-streams them
// segment-at-a-time, so a query whose working set exceeds its budget
// completes out-of-core — with identical results — before any
// sidecar-drop or fan-out collapse fires; without a spill directory the
// pre-spill ladder is preserved exactly. SegmentsPruned and
// SegmentsSpilled are deterministic counters in Metrics (EXPLAIN, the
// shell's \s, skybench -json); `skybench -experiment storage` measures
// memory vs segments vs segments+pruning plus a budgeted spill cell
// (BENCH_PR8.json), benchdiff-gated on both counters.
//
// # Skyline result cache
//
// Sessions built WithResultCache(bytes) (0 = 64 MiB default;
// WithoutResultCache disables; the shell's -cache flag mirrors both)
// memoize skyline results: the planner wraps every skyline-bearing plan
// in a cache node keyed on a normalized fingerprint — canonical operator
// shapes, the SKYLINE OF clause with dimension order normalized exactly
// when the plan is order-invariant, pushed-down filter conjuncts split
// and sorted, and the identity of every table read. Ablations that are
// bit-identical by contract (columnar kernel, vectorized expressions)
// share one entry; anything the canonicalizer does not recognize is
// simply not cached. A hit returns the stored rows — and the stored
// columnar sidecar — bit-identical to a recompute, without scheduling a
// single task.
//
// Staleness is impossible by construction rather than checked: every
// table carries a monotonic version, entry keys embed the versions of
// their dependencies read fresh at execution time, and CreateTable,
// RegisterTable, DropTable, and AppendRows all advance it — so a query
// over changed data simply computes a key no stale entry can have.
// AppendRows goes further on maintainable plans (a complete unbounded
// skyline over gathered, filtered scans): instead of invalidating, the
// cache upgrades the entry in place, dominance-testing only the appended
// rows against the cached skyline — the incremental-maintenance win that
// makes append-heavy sessions keep their hits. NULL dimensions or any
// other plan shape fall back to invalidation, and failed or canceled
// queries never populate. Entries are byte-accounted in an LRU that
// sheds sidecars before whole entries. CacheHits, CacheMisses,
// CacheEvictions, and IncrementalUpgrades are Metrics counters (EXPLAIN,
// the shell's \s, skybench -json; Session.ResultCacheStats snapshots the
// cache itself); `skybench -experiment cache` measures hit-vs-recompute
// latency, a zipfian repeat mix, and incremental upgrades vs
// invalidate-and-recompute (BENCH_PR9.json, benchdiff-gated on the
// hit/miss/upgrade counters).
package skysql

import (
	"skysql/internal/catalog"
	"skysql/internal/chaos"
	"skysql/internal/cluster"
	"skysql/internal/physical"
	"skysql/internal/types"
)

// Re-exported value model, so callers never import internal packages.
type (
	// Value is a SQL scalar (BIGINT, DOUBLE, STRING, BOOLEAN or NULL).
	Value = types.Value
	// Row is one result tuple.
	Row = types.Row
	// Kind is a column type.
	Kind = types.Kind
	// Field describes one column of a table schema.
	Field = types.Field
	// Schema is an ordered list of fields.
	Schema = types.Schema
	// Metrics carries execution counters of the last Collect.
	Metrics = cluster.Metrics
	// FaultInjection configures WithFaultInjection: a seed plus rates for
	// transient task errors, straggler delays, and allocation spikes. The
	// zero value injects nothing.
	FaultInjection = chaos.Config
	// TaskError is the permanent failure of one task (retry budget
	// exhausted or a non-transient error), carrying the stage, partition,
	// morsel, and attempt count; match with errors.As.
	TaskError = cluster.TaskError
)

// Sentinel errors of the fault-tolerance contract; match with errors.Is.
var (
	// ErrCanceled is wrapped by every cooperative-cancellation failure
	// (deadlines, canceled CollectContext, explicit cancels).
	ErrCanceled = cluster.ErrCanceled
	// ErrMemoryBudget is returned when a query exceeds WithMemoryBudget
	// after every degradation step has been taken.
	ErrMemoryBudget = cluster.ErrMemoryBudget
)

// Column kinds.
const (
	KindInt    = types.KindInt
	KindFloat  = types.KindFloat
	KindString = types.KindString
	KindBool   = types.KindBool
)

// Scalar constructors.
var (
	// Null is the SQL NULL value.
	Null = types.Null
)

// Int makes a BIGINT value.
func Int(v int64) Value { return types.Int(v) }

// Float makes a DOUBLE value.
func Float(v float64) Value { return types.Float(v) }

// Str makes a STRING value.
func Str(v string) Value { return types.Str(v) }

// Bool makes a BOOLEAN value.
func Bool(v bool) Value { return types.Bool(v) }

// NewSchema builds a schema from fields.
func NewSchema(fields ...Field) *Schema { return types.NewSchema(fields...) }

// SkylineStrategy selects the physical skyline algorithm; see the paper's
// §6.3 for the algorithm family names.
type SkylineStrategy = physical.SkylineStrategy

// Skyline strategies. Auto is the paper's Listing 8 behaviour.
const (
	Auto                    = physical.SkylineAuto
	DistributedComplete     = physical.SkylineDistributedComplete
	NonDistributedComplete  = physical.SkylineNonDistributedComplete
	DistributedIncomplete   = physical.SkylineDistributedIncomplete
	SortFilterSkyline       = physical.SkylineSFS
	DivideAndConquerSkyline = physical.SkylineDivideAndConquer
	GridComplete            = physical.SkylineGridComplete
	AngleComplete           = physical.SkylineAngleComplete
	ZorderComplete          = physical.SkylineZorderComplete
	CostBased               = physical.SkylineCostBased
)

// NewTable validates and builds a table that can be attached to a session
// via RegisterTable.
func NewTable(name string, schema *Schema, rows []Row) (*catalog.Table, error) {
	return catalog.NewTable(name, schema, rows)
}
