package skysql_test

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"skysql"
)

func hotelSession(t testing.TB) *skysql.Session {
	sess := skysql.NewSession(skysql.WithExecutors(3))
	schema := skysql.NewSchema(
		skysql.Field{Name: "id", Type: skysql.KindInt},
		skysql.Field{Name: "price", Type: skysql.KindInt},
		skysql.Field{Name: "user_rating", Type: skysql.KindInt},
	)
	rows := []skysql.Row{
		{skysql.Int(1), skysql.Int(50), skysql.Int(7)},
		{skysql.Int(2), skysql.Int(60), skysql.Int(9)},
		{skysql.Int(3), skysql.Int(80), skysql.Int(9)},
		{skysql.Int(4), skysql.Int(40), skysql.Int(5)},
		{skysql.Int(5), skysql.Int(55), skysql.Int(7)},
		{skysql.Int(6), skysql.Int(45), skysql.Int(8)},
	}
	if err := sess.CreateTable("hotels", schema, rows); err != nil {
		t.Fatal(err)
	}
	return sess
}

func rowsToStrings(rows []skysql.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func TestSessionSQLSkyline(t *testing.T) {
	sess := hotelSession(t)
	rows, err := sess.Query("SELECT price, user_rating FROM hotels SKYLINE OF price MIN, user_rating MAX")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("skyline = %v", rows)
	}
}

func TestDataFrameSkylineMatchesSQL(t *testing.T) {
	sess := hotelSession(t)
	sqlRows, err := sess.Query("SELECT id, price, user_rating FROM hotels SKYLINE OF price MIN, user_rating MAX")
	if err != nil {
		t.Fatal(err)
	}
	df := sess.Table("hotels").
		Skyline([]skysql.SkylineDim{skysql.Smin("price"), skysql.Smax("user_rating")}).
		Select("id", "price", "user_rating")
	dfRows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	a, b := rowsToStrings(sqlRows), rowsToStrings(dfRows)
	if strings.Join(a, ";") != strings.Join(b, ";") {
		t.Fatalf("DataFrame %v != SQL %v", b, a)
	}
	if df.Metrics() == nil || df.Metrics().Sky.DominanceTests() == 0 {
		t.Error("metrics not recorded")
	}
	if df.Duration() <= 0 {
		t.Error("duration not recorded")
	}
}

func TestDataFrameFluentChain(t *testing.T) {
	sess := hotelSession(t)
	rows, err := sess.Table("hotels").
		Where("price < 70").
		GroupBy("user_rating").
		Agg("user_rating", "count(*) AS n", "min(price) AS cheapest").
		OrderByDesc("user_rating").
		Limit(3).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].AsInt() != 9 || rows[0][2].AsInt() != 60 {
		t.Errorf("first row = %v", rows[0])
	}
}

func TestDataFrameJoinAndAlias(t *testing.T) {
	sess := hotelSession(t)
	cities := skysql.NewSchema(
		skysql.Field{Name: "hotel_id", Type: skysql.KindInt},
		skysql.Field{Name: "city", Type: skysql.KindString},
	)
	sess.MustCreateTable("cities", cities, []skysql.Row{
		{skysql.Int(1), skysql.Str("vienna")},
		{skysql.Int(2), skysql.Str("graz")},
	})
	rows, err := sess.Table("hotels").Alias("h").
		Join(sess.Table("cities").Alias("c"), "inner", "h.id = c.hotel_id").
		Select("h.id", "c.city").
		OrderBy("h.id").
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][1].AsString() != "vienna" {
		t.Fatalf("join rows = %v", rows)
	}
}

func TestDataFrameSkylineOptions(t *testing.T) {
	sess := hotelSession(t)
	df := sess.Table("hotels").Skyline(
		[]skysql.SkylineDim{skysql.Sdiff("user_rating"), skysql.Smin("price")},
		skysql.SkylineDistinct(), skysql.SkylineComplete(),
	)
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("per-rating minima = %v", rows)
	}
	plan, err := df.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "DISTINCT COMPLETE") {
		t.Errorf("flags missing from plan:\n%s", plan)
	}
}

func TestDataFrameErrors(t *testing.T) {
	sess := hotelSession(t)
	cases := []*skysql.DataFrame{
		sess.Table("hotels").Filter("?!bad"),
		sess.Table("hotels").Select("count(a,b)"),
		sess.Table("missing").Select("x"),
		sess.Table("hotels").Skyline(nil),
		sess.Table("hotels").Join(sess.Table("hotels"), "sideways", "1=1"),
		sess.Table("hotels").Join(sess.Table("hotels"), "inner", ""),
	}
	for i, df := range cases {
		if _, err := df.Collect(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSQLDataFrameCannotBeExtended(t *testing.T) {
	sess := hotelSession(t)
	df, err := sess.SQL("SELECT * FROM hotels")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.Filter("price > 1").Collect(); err == nil {
		t.Error("extending a SQL DataFrame must error")
	}
}

func TestStrategyOption(t *testing.T) {
	for _, st := range []skysql.SkylineStrategy{
		skysql.Auto, skysql.DistributedComplete, skysql.NonDistributedComplete,
		skysql.DistributedIncomplete, skysql.SortFilterSkyline, skysql.DivideAndConquerSkyline,
	} {
		sess := hotelSession(t)
		sessOpt := skysql.NewSession(skysql.WithExecutors(2), skysql.WithSkylineStrategy(st))
		_ = sessOpt
		sess2 := hotelSession(t)
		_ = sess2
		rows, err := sess.Query("SELECT price, user_rating FROM hotels SKYLINE OF price MIN, user_rating MAX")
		if err != nil {
			t.Fatalf("strategy %v: %v", st, err)
		}
		if len(rows) != 3 {
			t.Errorf("strategy %v: %d rows", st, len(rows))
		}
	}
}

func TestRewriteSkylineAPI(t *testing.T) {
	sess := hotelSession(t)
	ref, err := sess.RewriteSkyline("SELECT * FROM hotels SKYLINE OF price MIN, user_rating MAX", false)
	if err != nil {
		t.Fatal(err)
	}
	refRows, err := sess.Query(ref)
	if err != nil {
		t.Fatal(err)
	}
	intRows, err := sess.Query("SELECT * FROM hotels SKYLINE OF price MIN, user_rating MAX")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(rowsToStrings(refRows), ";") != strings.Join(rowsToStrings(intRows), ";") {
		t.Error("reference and integrated results differ")
	}
}

func TestLoadCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "h.csv")
	data := "id,price,rating\n1,50,7\n2,60,9\n3,,8\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	sess := skysql.NewSession()
	if err := sess.LoadCSV("h", path, []skysql.Kind{skysql.KindInt, skysql.KindInt, skysql.KindInt}); err != nil {
		t.Fatal(err)
	}
	rows, err := sess.Query("SELECT id FROM h WHERE price IS NOT NULL SKYLINE OF price MIN, rating MAX")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("csv skyline = %v", rows)
	}
	if got := sess.Tables(); len(got) != 1 || got[0] != "h" {
		t.Errorf("Tables = %v", got)
	}
	sess.DropTable("h")
	if len(sess.Tables()) != 0 {
		t.Error("DropTable failed")
	}
}

func TestFormatRows(t *testing.T) {
	sess := hotelSession(t)
	df, err := sess.SQL("SELECT id, price FROM hotels ORDER BY id LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	schema, _ := df.Schema()
	out := skysql.FormatRows(schema, rows)
	if !strings.Contains(out, "id") || !strings.Contains(out, "50") {
		t.Errorf("FormatRows output:\n%s", out)
	}
}

func TestExplainSQL(t *testing.T) {
	sess := hotelSession(t)
	out, err := sess.Explain("SELECT * FROM hotels SKYLINE OF price MIN, user_rating MAX")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Skyline", "LocalSkylineExec", "GlobalSkylineExec", "AllTuples"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q", want)
		}
	}
}

func TestSetExecutors(t *testing.T) {
	sess := hotelSession(t)
	sess.SetExecutors(10)
	if sess.Executors() != 10 {
		t.Error("SetExecutors failed")
	}
	sess.SetExecutors(0)
	if sess.Executors() != 10 {
		t.Error("SetExecutors must ignore non-positive values")
	}
}

func TestSimulatedTimeOption(t *testing.T) {
	sess := skysql.NewSession(skysql.WithExecutors(8), skysql.WithSimulatedTime())
	schema := skysql.NewSchema(
		skysql.Field{Name: "a", Type: skysql.KindInt},
		skysql.Field{Name: "b", Type: skysql.KindInt},
	)
	rows := make([]skysql.Row, 2000)
	for i := range rows {
		rows[i] = skysql.Row{skysql.Int(int64(i % 97)), skysql.Int(int64(i % 83))}
	}
	sess.MustCreateTable("t", schema, rows)
	df, err := sess.SQL("SELECT * FROM t SKYLINE OF a MIN, b MAX")
	if err != nil {
		t.Fatal(err)
	}
	out, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty skyline")
	}
	if df.Duration() < 0 {
		t.Error("simulated duration must be non-negative")
	}
}

func TestSkylineWindowOption(t *testing.T) {
	unbounded := hotelSession(t)
	bounded := skysql.NewSession(skysql.WithExecutors(3), skysql.WithSkylineWindow(1))
	schema := skysql.NewSchema(
		skysql.Field{Name: "id", Type: skysql.KindInt},
		skysql.Field{Name: "price", Type: skysql.KindInt},
		skysql.Field{Name: "user_rating", Type: skysql.KindInt},
	)
	rows := []skysql.Row{
		{skysql.Int(1), skysql.Int(50), skysql.Int(7)},
		{skysql.Int(2), skysql.Int(60), skysql.Int(9)},
		{skysql.Int(3), skysql.Int(80), skysql.Int(9)},
		{skysql.Int(4), skysql.Int(40), skysql.Int(5)},
		{skysql.Int(5), skysql.Int(55), skysql.Int(7)},
		{skysql.Int(6), skysql.Int(45), skysql.Int(8)},
	}
	bounded.MustCreateTable("hotels", schema, rows)
	q := "SELECT id FROM hotels SKYLINE OF price MIN, user_rating MAX"
	a, err := unbounded.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bounded.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(rowsToStrings(a), ";") != strings.Join(rowsToStrings(b), ";") {
		t.Errorf("bounded window changed the result: %v vs %v", b, a)
	}
}

func TestDataFrameRightAndCrossJoin(t *testing.T) {
	sess := hotelSession(t)
	extras := skysql.NewSchema(
		skysql.Field{Name: "hotel_id", Type: skysql.KindInt},
		skysql.Field{Name: "pool", Type: skysql.KindBool},
	)
	sess.MustCreateTable("extras", extras, []skysql.Row{
		{skysql.Int(1), skysql.Bool(true)},
		{skysql.Int(99), skysql.Bool(false)}, // no matching hotel
	})
	rows, err := sess.Table("hotels").Alias("h").
		Join(sess.Table("extras").Alias("e"), "right", "h.id = e.hotel_id").
		Select("e.hotel_id", "h.price").
		OrderBy("e.hotel_id").
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("right join rows = %v", rows)
	}
	if !rows[1][1].IsNull() {
		t.Errorf("unmatched right row must null-extend left: %v", rows[1])
	}
	cross, err := sess.Table("hotels").Join(sess.Table("extras"), "cross", "").Count()
	if err != nil {
		t.Fatal(err)
	}
	if cross != 12 {
		t.Errorf("cross join count = %d, want 12", cross)
	}
}

func TestDataFrameDistinctAndCount(t *testing.T) {
	sess := hotelSession(t)
	n, err := sess.Table("hotels").Select("user_rating").Distinct().Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("distinct ratings = %d, want 4", n)
	}
}

func TestDataFrameChainedOrderBy(t *testing.T) {
	sess := hotelSession(t)
	rows, err := sess.Table("hotels").
		Select("user_rating", "price").
		OrderByDesc("user_rating").
		OrderBy("price").
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	// rating desc, then price asc: (9,60), (9,80), (8,45), ...
	if rows[0][1].AsInt() != 60 || rows[1][1].AsInt() != 80 {
		t.Errorf("chained order = %v", rows[:2])
	}
}

func TestWithoutColumnarKernelOption(t *testing.T) {
	// The boxed and kernel paths must agree end-to-end; both sessions run
	// the same query and dominance-test accounting must reach the metrics
	// either way.
	q := "SELECT id, price, user_rating FROM hotels SKYLINE OF price MIN, user_rating MAX"
	kernel := hotelSession(t)
	krows, err := kernel.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	boxed := skysql.NewSession(skysql.WithExecutors(3), skysql.WithoutColumnarKernel())
	hotelInto(t, boxed)
	brows, err := boxed.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	kg, bg := rowsToStrings(krows), rowsToStrings(brows)
	if strings.Join(kg, "|") != strings.Join(bg, "|") {
		t.Fatalf("kernel rows %v != boxed rows %v", kg, bg)
	}
	df, err := kernel.SQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.Collect(); err != nil {
		t.Fatal(err)
	}
	if df.Metrics().Sky.DominanceTests() == 0 {
		t.Error("kernel path must record dominance tests")
	}
}

func TestExplainStageTimesAfterRun(t *testing.T) {
	sess := hotelSession(t)
	df, err := sess.SQL("SELECT * FROM hotels SKYLINE OF price MIN, user_rating MAX")
	if err != nil {
		t.Fatal(err)
	}
	before, err := df.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(before, "Stage Times") {
		t.Error("stage times must not render before the first run")
	}
	if _, err := df.Collect(); err != nil {
		t.Fatal(err)
	}
	after, err := df.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(after, "== Stage Times (last run) ==") || !strings.Contains(after, "stage  1:") {
		t.Errorf("explain after run must include the stage-time breakdown:\n%s", after)
	}
}

// hotelInto registers the hotels table of hotelSession into an
// already-configured session.
func hotelInto(t testing.TB, sess *skysql.Session) {
	schema := skysql.NewSchema(
		skysql.Field{Name: "id", Type: skysql.KindInt},
		skysql.Field{Name: "price", Type: skysql.KindInt},
		skysql.Field{Name: "user_rating", Type: skysql.KindInt},
	)
	rows := []skysql.Row{
		{skysql.Int(1), skysql.Int(50), skysql.Int(7)},
		{skysql.Int(2), skysql.Int(60), skysql.Int(9)},
		{skysql.Int(3), skysql.Int(80), skysql.Int(9)},
		{skysql.Int(4), skysql.Int(40), skysql.Int(5)},
		{skysql.Int(5), skysql.Int(55), skysql.Int(7)},
		{skysql.Int(6), skysql.Int(45), skysql.Int(8)},
	}
	if err := sess.CreateTable("hotels", schema, rows); err != nil {
		t.Fatal(err)
	}
}

func TestWithAdaptiveExchangeOption(t *testing.T) {
	// Adaptive post-exchange partitioning must leave results untouched
	// while collapsing the tiny hotels table into fewer tasks, and the
	// decisions must be visible in the metrics.
	q := "SELECT id, price, user_rating FROM hotels SKYLINE OF price MIN, user_rating MAX"
	static := hotelSession(t)
	srows, err := static.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	adaptive := skysql.NewSession(skysql.WithExecutors(3), skysql.WithAdaptiveExchange(6))
	hotelInto(t, adaptive)
	df, err := adaptive.SQL(q)
	if err != nil {
		t.Fatal(err)
	}
	arows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	sg, ag := rowsToStrings(srows), rowsToStrings(arows)
	if strings.Join(sg, "|") != strings.Join(ag, "|") {
		t.Fatalf("adaptive rows %v != static rows %v", ag, sg)
	}
	ds := df.Metrics().AdaptiveDecisions()
	if len(ds) == 0 {
		t.Fatal("adaptive run must record partitioning decisions")
	}
	for _, d := range ds {
		if d.Chosen > d.Static {
			t.Errorf("adaptive chose %d partitions over static %d", d.Chosen, d.Static)
		}
	}
}

func TestExplainReportsBatchesDecoded(t *testing.T) {
	sess := hotelSession(t)
	df, err := sess.SQL("SELECT * FROM hotels SKYLINE OF price MIN, user_rating MAX")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.Collect(); err != nil {
		t.Fatal(err)
	}
	out, err := df.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "batches decoded:") {
		t.Errorf("explain after run must report batches decoded:\n%s", out)
	}
	if df.Metrics().BatchesDecoded() == 0 {
		t.Error("kernel run must decode at least one batch")
	}
}

func TestWithoutVectorizedExprsOption(t *testing.T) {
	// A filtered skyline query must produce identical rows with the
	// vectorized expression engine on and off; the default (vectorized)
	// run reports the passes it served, the boxed run reports none.
	q := "SELECT id, price, user_rating FROM hotels WHERE price < 70 SKYLINE OF price MIN, user_rating MAX"
	vec := hotelSession(t)
	vdf, err := vec.SQL(q)
	if err != nil {
		t.Fatal(err)
	}
	vrows, err := vdf.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if vdf.Metrics().VectorizedBatches() == 0 {
		t.Error("default run must report vectorized batches on a filtered skyline")
	}
	boxed := skysql.NewSession(skysql.WithExecutors(3), skysql.WithoutVectorizedExprs())
	hotelInto(t, boxed)
	bdf, err := boxed.SQL(q)
	if err != nil {
		t.Fatal(err)
	}
	brows, err := bdf.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if bdf.Metrics().VectorizedBatches() != 0 {
		t.Error("WithoutVectorizedExprs run must report zero vectorized batches")
	}
	vg, bg := rowsToStrings(vrows), rowsToStrings(brows)
	if strings.Join(vg, "|") != strings.Join(bg, "|") {
		t.Fatalf("vectorized rows %v != boxed rows %v", vg, bg)
	}
	out, err := vdf.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "vectorized batches:") {
		t.Errorf("explain after run must report vectorized batches:\n%s", out)
	}
}

func TestWithZorderSFSPresortOption(t *testing.T) {
	// The Z-order presort computes the same skyline as the entropy presort
	// through the public API.
	q := "SELECT id, price, user_rating FROM hotels SKYLINE OF price MIN, user_rating MAX"
	entropy := skysql.NewSession(skysql.WithExecutors(3), skysql.WithSkylineStrategy(skysql.SortFilterSkyline))
	hotelInto(t, entropy)
	erows, err := entropy.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	zorder := skysql.NewSession(skysql.WithExecutors(3),
		skysql.WithSkylineStrategy(skysql.SortFilterSkyline), skysql.WithZorderSFSPresort())
	hotelInto(t, zorder)
	zrows, err := zorder.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	eg, zg := rowsToStrings(erows), rowsToStrings(zrows)
	if strings.Join(eg, "|") != strings.Join(zg, "|") {
		t.Fatalf("zorder presort rows %v != entropy presort rows %v", zg, eg)
	}
}

func TestAdaptiveExchangeDefaultOn(t *testing.T) {
	// Sessions default to cost-chosen adaptive exchanges: the tiny hotels
	// table collapses to single-partition task rounds, the choices are
	// pinned in both decision lists, and WithoutAdaptiveExchange restores
	// the static fan-out with identical result rows.
	q := "SELECT id, price, user_rating FROM hotels SKYLINE OF price MIN, user_rating MAX"
	def := hotelSession(t)
	ddf, err := def.SQL(q)
	if err != nil {
		t.Fatal(err)
	}
	drows, err := ddf.Collect()
	if err != nil {
		t.Fatal(err)
	}
	ads := ddf.Metrics().AdaptiveDecisions()
	if len(ads) == 0 {
		t.Fatal("default session must record adaptive decisions")
	}
	for _, d := range ads {
		if d.Chosen != 1 || d.Static != 3 {
			t.Errorf("tiny input must collapse 3 -> 1, got %+v", d)
		}
	}
	var targets int
	for _, d := range ddf.Metrics().CostDecisions() {
		if d.Site == "exchange-target" {
			targets++
			if d.Choice != "adaptive" {
				t.Errorf("tiny-input target decision = %+v, want adaptive", d)
			}
		}
	}
	if targets != len(ads) {
		t.Errorf("%d exchange-target cost decisions for %d adaptive decisions", targets, len(ads))
	}

	static := skysql.NewSession(skysql.WithExecutors(3), skysql.WithoutAdaptiveExchange())
	hotelInto(t, static)
	sdf, err := static.SQL(q)
	if err != nil {
		t.Fatal(err)
	}
	srows, err := sdf.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(sdf.Metrics().AdaptiveDecisions()) != 0 {
		t.Error("WithoutAdaptiveExchange must not record adaptive decisions")
	}
	for _, d := range sdf.Metrics().CostDecisions() {
		if d.Site == "exchange-target" {
			t.Errorf("WithoutAdaptiveExchange recorded %+v", d)
		}
	}
	dg, sg := rowsToStrings(drows), rowsToStrings(srows)
	if strings.Join(dg, "|") != strings.Join(sg, "|") {
		t.Fatalf("adaptive rows %v != static rows %v", dg, sg)
	}

	// An explicit target overrides the cost-chosen one: decisions land in
	// AdaptiveDecisions with the pinned arithmetic, but no exchange-target
	// cost decision is recorded (nothing was cost-chosen).
	override := skysql.NewSession(skysql.WithExecutors(3), skysql.WithAdaptiveExchange(2))
	hotelInto(t, override)
	odf, err := override.SQL(q)
	if err != nil {
		t.Fatal(err)
	}
	orows, err := odf.Collect()
	if err != nil {
		t.Fatal(err)
	}
	oas := odf.Metrics().AdaptiveDecisions()
	if len(oas) == 0 {
		t.Fatal("explicit-target session must record adaptive decisions")
	}
	// 6 scanned rows at 2 rows per partition fill all 3 executors.
	if oas[0].Chosen != 3 || oas[0].Rows != 6 {
		t.Errorf("scan decision = %+v, want 6 rows -> 3 partitions", oas[0])
	}
	for _, d := range odf.Metrics().CostDecisions() {
		if d.Site == "exchange-target" {
			t.Errorf("explicit target recorded cost decision %+v", d)
		}
	}
	og := rowsToStrings(orows)
	if strings.Join(og, "|") != strings.Join(sg, "|") {
		t.Fatalf("override rows %v != static rows %v", og, sg)
	}
}

func TestExplainReportsCostDecisions(t *testing.T) {
	// A filtered skyline run surfaces the decode-at-scan gate's choice in
	// Explain, next to the stage times and decode counters.
	sess := hotelSession(t)
	df, err := sess.SQL("SELECT id, price, user_rating FROM hotels WHERE price < 70 SKYLINE OF price MIN, user_rating MAX")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.Collect(); err != nil {
		t.Fatal(err)
	}
	out, err := df.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cost decisions:") || !strings.Contains(out, "decode-at-scan:") {
		t.Errorf("explain after run must surface cost decisions:\n%s", out)
	}
}

func TestWithAdaptiveExchangeZeroKeepsStatic(t *testing.T) {
	// The pre-default contract: targetRows <= 0 keeps the static fan-out,
	// same as WithoutAdaptiveExchange.
	sess := skysql.NewSession(skysql.WithExecutors(3), skysql.WithAdaptiveExchange(0))
	hotelInto(t, sess)
	df, err := sess.SQL("SELECT id, price, user_rating FROM hotels SKYLINE OF price MIN, user_rating MAX")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.Collect(); err != nil {
		t.Fatal(err)
	}
	if ds := df.Metrics().AdaptiveDecisions(); len(ds) != 0 {
		t.Errorf("WithAdaptiveExchange(0) must keep static partitioning, recorded %v", ds)
	}
}

func TestAdaptiveExchangeOptionsLastWins(t *testing.T) {
	// Option application is last-wins: an explicit target after
	// WithoutAdaptiveExchange re-enables adaptivity, and vice versa.
	q := "SELECT id, price, user_rating FROM hotels SKYLINE OF price MIN, user_rating MAX"
	on := skysql.NewSession(skysql.WithExecutors(3),
		skysql.WithoutAdaptiveExchange(), skysql.WithAdaptiveExchange(2))
	hotelInto(t, on)
	odf, err := on.SQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := odf.Collect(); err != nil {
		t.Fatal(err)
	}
	if len(odf.Metrics().AdaptiveDecisions()) == 0 {
		t.Error("explicit target after WithoutAdaptiveExchange must win")
	}
	off := skysql.NewSession(skysql.WithExecutors(3),
		skysql.WithAdaptiveExchange(2), skysql.WithoutAdaptiveExchange())
	hotelInto(t, off)
	fdf, err := off.SQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fdf.Collect(); err != nil {
		t.Fatal(err)
	}
	if ds := fdf.Metrics().AdaptiveDecisions(); len(ds) != 0 {
		t.Errorf("WithoutAdaptiveExchange last must win, recorded %v", ds)
	}
}
